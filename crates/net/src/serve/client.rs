//! The serve client: submit a job, stream the artifact to disk, and
//! survive the network.
//!
//! [`fetch`] owns the full retry story so callers don't have to:
//! connection failures and mid-stream disconnects reconnect with
//! capped-exponential backoff and **resume from the last byte on
//! disk** — the durable watermark, not an in-memory count — so a crash
//! of the client itself also resumes correctly. Retryable rejections
//! (`queue-full`, `job-timeout`, `overloaded`) honour the server's
//! `retry_after` hint; `job-failed` is also retried through the same
//! bounded budget, because failures are not cached server-side — a
//! fresh submit legitimately retries the run — and the named error
//! surfaces once the attempts are spent. Local *sink* errors (the
//! output disk) are fatal and never retried: retrying cannot fix a full
//! or broken disk, and failing fast leaves a clean prefix that a later
//! `--resume` continues from.
//!
//! Integrity spans reconnects: the client hashes the pre-existing
//! prefix it is resuming over, continues the same FNV-1a over every
//! streamed byte, and compares against the server's *whole-artifact*
//! checksum from the `DONE` frame — a stitched-together file that
//! diverged anywhere fails loudly.

use std::fs::OpenOptions;
use std::io::{self, Seek, SeekFrom, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::time::Duration;

use super::proto::{
    read_reply, write_drain_req, write_status_req, write_submit, JobSpec, RejectCode, ServeMsg,
    ServeStatus,
};
use crate::backoff::Backoff;
use pa_graph::io::{hash_file_prefix, Fnv1a};

/// Everything [`fetch`] needs. All fields public; [`FetchOptions::new`]
/// provides defaults.
#[derive(Debug, Clone)]
pub struct FetchOptions {
    /// Server address, `host:port`.
    pub addr: String,
    /// The job to fetch.
    pub spec: JobSpec,
    /// Output path.
    pub out: PathBuf,
    /// Resume from `out`'s current length instead of truncating it.
    pub resume: bool,
    /// Maximum connection/submission attempts before giving up.
    pub max_attempts: u32,
    /// First reconnect delay.
    pub backoff_initial: Duration,
    /// Reconnect delay ceiling.
    pub backoff_cap: Duration,
    /// Optional jitter seed for the reconnect schedule (see
    /// [`Backoff::with_jitter`]); `None` for the deterministic schedule.
    pub backoff_seed: Option<u64>,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read/write timeout once connected.
    pub io_timeout: Duration,
    /// Test hook: fail the local sink once this many bytes are on disk,
    /// leaving a file of *exactly* this length. Simulates a client
    /// crash mid-stream deterministically (sink failures are fatal, so
    /// no retry blurs the cut). `None` in production.
    pub stop_after_bytes: Option<u64>,
}

impl FetchOptions {
    /// Defaults: fresh fetch, 8 attempts, 50 ms → 2 s backoff without
    /// jitter, 2 s connect timeout, 10 s I/O timeout.
    pub fn new(addr: impl Into<String>, spec: JobSpec, out: impl Into<PathBuf>) -> Self {
        FetchOptions {
            addr: addr.into(),
            spec,
            out: out.into(),
            resume: false,
            max_attempts: 8,
            backoff_initial: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            backoff_seed: None,
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            stop_after_bytes: None,
        }
    }
}

/// What a successful [`fetch`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchReport {
    /// The job's identity.
    pub job_id: u64,
    /// Total artifact length in bytes.
    pub total: u64,
    /// Bytes transferred by *this* call (0 if the file was complete).
    pub transferred: u64,
    /// Offset this call started from (0 unless resuming).
    pub resumed_from: u64,
    /// Connection attempts used.
    pub attempts: u32,
    /// Whole-artifact FNV-1a checksum, verified against the server's.
    pub checksum: u64,
}

/// Why a [`fetch`] failed for good.
#[derive(Debug)]
pub enum FetchError {
    /// The server turned the job away with a non-retryable code (or a
    /// retryable one after the attempt budget ran out — see
    /// [`FetchError::Exhausted`]).
    Rejected {
        /// The server's reject code.
        code: RejectCode,
        /// Its retry hint.
        retry_after: Duration,
        /// Its message.
        msg: String,
    },
    /// The local output file failed. Never retried.
    Sink(io::Error),
    /// The server broke the protocol (wrong job id, non-contiguous
    /// chunks, `DONE` before all bytes, unparseable frames).
    Protocol(String),
    /// The stitched file does not match the server's artifact.
    ChecksumMismatch {
        /// The server's whole-artifact digest.
        expected: u64,
        /// What the local file hashes to.
        actual: u64,
    },
    /// Every attempt failed with a transient error; `last` is the most
    /// recent one.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The final transient error.
        last: String,
    },
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Rejected {
                code,
                retry_after,
                msg,
            } => {
                write!(f, "server rejected the job ({code}): {msg}")?;
                if code.is_retryable() {
                    write!(f, " (retry after {retry_after:?})")?;
                }
                Ok(())
            }
            FetchError::Sink(e) => write!(f, "writing the output file failed: {e}"),
            FetchError::Protocol(msg) => write!(f, "server protocol violation: {msg}"),
            FetchError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: server artifact {expected:#018x}, local file {actual:#018x}"
            ),
            FetchError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s); last error: {last}")
            }
        }
    }
}

impl std::error::Error for FetchError {}

/// How one connection attempt ended, for the retry loop's eyes.
enum Attempt {
    Done { total: u64, checksum: u64 },
    Fatal(FetchError),
    Retry { why: String, after: Duration },
}

/// Fetch a job's artifact to `opts.out`, reconnecting and resuming as
/// needed.
///
/// # Errors
///
/// See [`FetchError`]. The output file always holds a clean artifact
/// prefix on failure (every written byte was verified contiguous), so a
/// later resume can continue it.
pub fn fetch(opts: &FetchOptions) -> Result<FetchReport, FetchError> {
    let job_id = opts.spec.job_id();
    let mut on_disk: u64 = if opts.resume {
        std::fs::metadata(&opts.out).map(|m| m.len()).unwrap_or(0)
    } else {
        0
    };
    let resumed_from = on_disk;
    let mut hasher = if on_disk > 0 {
        Fnv1a::from_digest(hash_file_prefix(&opts.out, on_disk).map_err(FetchError::Sink)?)
    } else {
        Fnv1a::new()
    };
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&opts.out)
        .map_err(FetchError::Sink)?;
    // Truncate to the watermark: a fresh fetch discards any stale file,
    // a resume trims nothing (the length *is* the watermark).
    file.set_len(on_disk).map_err(FetchError::Sink)?;
    file.seek(SeekFrom::Start(on_disk))
        .map_err(FetchError::Sink)?;

    let mut backoff = Backoff::new(opts.backoff_initial.max(Duration::from_millis(1)), {
        opts.backoff_cap
            .max(opts.backoff_initial)
            .max(Duration::from_millis(1))
    });
    if let Some(seed) = opts.backoff_seed {
        backoff = backoff.with_jitter(seed);
    }
    let mut attempts = 0u32;
    let mut transferred = 0u64;
    let mut last = String::from("no attempt made");
    while attempts < opts.max_attempts.max(1) {
        attempts += 1;
        let before = on_disk;
        let outcome = attempt(
            opts,
            job_id,
            &mut file,
            &mut hasher,
            &mut on_disk,
            &mut transferred,
        );
        match outcome {
            Attempt::Done { total, checksum } => {
                file.sync_all().map_err(FetchError::Sink)?;
                return Ok(FetchReport {
                    job_id,
                    total,
                    transferred,
                    resumed_from,
                    attempts,
                    checksum,
                });
            }
            Attempt::Fatal(e) => return Err(e),
            Attempt::Retry { why, after } => {
                last = why;
                if on_disk > before {
                    // Progress was made; the outage is fresh. Start the
                    // backoff schedule over.
                    backoff.reset();
                }
                if attempts < opts.max_attempts.max(1) {
                    std::thread::sleep(backoff.next_delay().max(after));
                }
            }
        }
    }
    Err(FetchError::Exhausted { attempts, last })
}

/// One connection attempt: connect, submit at the current watermark,
/// stream into `file` until `DONE` or an error.
fn attempt(
    opts: &FetchOptions,
    job_id: u64,
    file: &mut std::fs::File,
    hasher: &mut Fnv1a,
    on_disk: &mut u64,
    transferred: &mut u64,
) -> Attempt {
    let retry = |why: String| Attempt::Retry {
        why,
        after: Duration::ZERO,
    };
    let mut stream = match connect(&opts.addr, opts.connect_timeout) {
        Ok(s) => s,
        Err(e) => return retry(format!("connect to {}: {e}", opts.addr)),
    };
    let _ = stream.set_read_timeout(Some(opts.io_timeout));
    let _ = stream.set_write_timeout(Some(opts.io_timeout));
    let _ = stream.set_nodelay(true);
    if let Err(e) = write_submit(&mut stream, &opts.spec, *on_disk) {
        return retry(format!("submitting job: {e}"));
    }
    let total = match read_reply(&mut stream) {
        Ok(ServeMsg::Accept {
            job_id: jid,
            offset,
            total,
        }) => {
            if jid != job_id {
                return Attempt::Fatal(FetchError::Protocol(format!(
                    "server accepted job {jid:#018x}, submitted {job_id:#018x} — \
                     job-id derivation disagrees across the wire"
                )));
            }
            if offset != *on_disk {
                return Attempt::Fatal(FetchError::Protocol(format!(
                    "server echoed offset {offset}, submitted {on_disk}"
                )));
            }
            total
        }
        Ok(ServeMsg::Reject {
            code,
            retry_after,
            msg,
        }) => {
            // `job-failed` keeps a false retryable bit on the wire (the
            // run may be deterministically broken), but the failure is
            // not cached server-side, so a fresh submit retries the run
            // — worth spending the bounded attempt budget on.
            if code.is_retryable() || code == RejectCode::JobFailed {
                return Attempt::Retry {
                    why: format!("server rejected ({code}): {msg}"),
                    after: retry_after,
                };
            }
            return Attempt::Fatal(FetchError::Rejected {
                code,
                retry_after,
                msg,
            });
        }
        Ok(other) => {
            return Attempt::Fatal(FetchError::Protocol(format!(
                "expected ACCEPT or REJECT, got {other:?}"
            )))
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Attempt::Fatal(FetchError::Protocol(e.to_string()))
        }
        Err(e) => return retry(format!("reading server reply: {e}")),
    };
    loop {
        match read_reply(&mut stream) {
            Ok(ServeMsg::Chunk { offset, data }) => {
                if offset != *on_disk {
                    return Attempt::Fatal(FetchError::Protocol(format!(
                        "non-contiguous chunk: at byte {offset}, watermark {on_disk}"
                    )));
                }
                let mut data: &[u8] = &data;
                if let Some(limit) = opts.stop_after_bytes {
                    let room = limit.saturating_sub(*on_disk);
                    if (data.len() as u64) > room {
                        // Write exactly up to the limit, then fail the
                        // sink: the file length is deterministic.
                        data = &data[..room as usize];
                        if let Err(e) = file.write_all(data).and_then(|()| file.sync_all()) {
                            return Attempt::Fatal(FetchError::Sink(e));
                        }
                        return Attempt::Fatal(FetchError::Sink(io::Error::other(format!(
                            "simulated sink failure after {limit} bytes"
                        ))));
                    }
                }
                if let Err(e) = file.write_all(data) {
                    return Attempt::Fatal(FetchError::Sink(e));
                }
                hasher.update(data);
                *on_disk += data.len() as u64;
                *transferred += data.len() as u64;
            }
            Ok(ServeMsg::Done {
                total: done_total,
                checksum,
            }) => {
                if done_total != total {
                    return Attempt::Fatal(FetchError::Protocol(format!(
                        "DONE total {done_total} contradicts ACCEPT total {total}"
                    )));
                }
                if *on_disk != total {
                    return Attempt::Fatal(FetchError::Protocol(format!(
                        "DONE at watermark {on_disk}, expected {total} bytes"
                    )));
                }
                let actual = hasher.digest();
                if actual != checksum {
                    return Attempt::Fatal(FetchError::ChecksumMismatch {
                        expected: checksum,
                        actual,
                    });
                }
                return Attempt::Done { total, checksum };
            }
            Ok(other) => {
                return Attempt::Fatal(FetchError::Protocol(format!(
                    "expected CHUNK or DONE, got {other:?}"
                )))
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Attempt::Fatal(FetchError::Protocol(e.to_string()))
            }
            Err(e) => return retry(format!("mid-stream: {e}")),
        }
    }
}

fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: no address"))
    })?;
    TcpStream::connect_timeout(&sockaddr, timeout)
}

/// Ask the daemon at `addr` to drain: stop admitting, cancel queued
/// jobs, finish in-flight ones, then exit. Returns `(running, dropped)`
/// from the `DRAIN_ACK`.
///
/// # Errors
///
/// Connection failures, and `InvalidData` if the peer answers with
/// anything but a `DRAIN_ACK`.
pub fn drain(addr: &str, timeout: Duration) -> io::Result<(u32, u32)> {
    let mut stream = connect(addr, timeout)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    write_drain_req(&mut stream)?;
    match read_reply(&mut stream)? {
        ServeMsg::DrainAck { running, dropped } => Ok((running, dropped)),
        ServeMsg::Reject { code, msg, .. } => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("drain rejected ({code}): {msg}"),
        )),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected DRAIN_ACK, got {other:?}"),
        )),
    }
}

/// Ask the daemon at `addr` for a health snapshot (queue depth, pool
/// size, cache footprint, lifetime counters). One request, one reply,
/// no retry — health checks should report the outage, not ride it out.
///
/// # Errors
///
/// Connection failures, and `InvalidData` if the peer answers with
/// anything but a `STATUS_ACK`.
pub fn status(addr: &str, timeout: Duration) -> io::Result<ServeStatus> {
    let mut stream = connect(addr, timeout)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    write_status_req(&mut stream)?;
    match read_reply(&mut stream)? {
        ServeMsg::Status(status) => Ok(status),
        ServeMsg::Reject { code, msg, .. } => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("status rejected ({code}): {msg}"),
        )),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected STATUS_ACK, got {other:?}"),
        )),
    }
}
