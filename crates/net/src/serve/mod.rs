//! Generation-as-a-service: the `pagen serve` daemon and its client.
//!
//! The batch pipeline runs one job per process invocation. This module
//! turns the same engines into a **long-running multi-tenant service**:
//! a daemon accepts connections on one TCP port, each carrying either a
//! *job submission* (generate `{n, x, p, scheme, engine, model, seed,
//! format}` laid out for `ranks` ranks, stream the bytes back) or a
//! *control message* (drain). The pieces:
//!
//! * [`proto`] — the wire protocol: a kind-byte space disjoint from the
//!   rank-to-rank transport's, layered on the same length-prefixed
//!   frames, so one `pa-net` reader serves both.
//! * [`Server`] — bounded FIFO job queue, a supervised worker pool
//!   running jobs through a caller-supplied [`JobRunner`], an artifact
//!   cache keyed by job id (rebuilt from disk after a crash, bounded by
//!   a byte quota), and per-connection streaming with
//!   resume-from-offset under a connection cap.
//! * [`fetch`] — the client: submit, stream to disk, and transparently
//!   reconnect with capped-exponential backoff, resuming from the last
//!   durable byte. [`drain`] asks a daemon to wind down cleanly;
//!   [`status`] fetches a health snapshot ([`ServeStatus`]).
//!
//! # Identity, caching and resume
//!
//! A job is keyed by the FNV-1a digest of its canonical parameter
//! encoding ([`JobSpec::job_id`]). Submitting the same tuple twice —
//! concurrently or later — never generates twice: concurrent submits
//! **coalesce** onto one run, later submits stream the cached artifact.
//! Because the artifact's bytes are a pure function of the tuple, a
//! resume token is just `(tuple, byte offset)`: a client that lost its
//! connection re-submits with `offset` set to what it has, and the
//! server re-streams exactly the missing suffix of the artifact. A
//! whole-artifact checksum in the final frame lets the client verify
//! the stitched result without re-reading the server's copy.
//!
//! # Backpressure and drain
//!
//! The queue bound counts *queued* jobs only. When it is full the
//! server does not buffer or block — it answers
//! [`RejectCode::QueueFull`] with an explicit `retry_after` hint and
//! closes, keeping the daemon's memory bounded no matter how many
//! clients pile on. Drain is a protocol message, not a signal: on
//! [`drain`] the daemon stops admitting, fails queued jobs with a named
//! [`RejectCode::Draining`] rejection, lets in-flight jobs finish and
//! stream to their waiting clients, then exits its accept loop.
//!
//! # Self-healing
//!
//! Partial failure is the common case at scale, so the daemon keeps the
//! transport's "named error, never a hang" discipline under every
//! fault it can see: panicking runners are caught and reported as job
//! failures, runs past [`ServeConfig::job_timeout`] are abandoned with
//! a retryable rejection and their wedged workers replaced, a restart
//! on the same jobs directory recovers the artifact cache (and deletes
//! temp litter) so resuming clients still checksum-verify, poison
//! tuples stop re-running after [`ServeConfig::max_job_failures`], and
//! connections beyond [`ServeConfig::max_conns`] are turned away with
//! [`RejectCode::Overloaded`] instead of an unbounded thread. See the
//! server module docs for the mechanics.

mod client;
pub mod proto;
mod server;

pub use client::{drain, fetch, status, FetchError, FetchOptions, FetchReport};
pub use proto::{JobSpec, RejectCode, ServeStats, ServeStatus, MAX_REQUEST_FRAME, SERVE_VERSION};
pub use server::{JobRunner, ServeConfig, Server};
