//! The serve wire protocol.
//!
//! Serve messages ride the same `len:u32 kind:u8 payload` frames as the
//! rank-to-rank transport (see `crate::frame`), in a disjoint kind-byte
//! space (`0x41..`), so a stray engine peer dialing a serve port — or
//! vice versa — fails with a named error instead of misparsing. Every
//! multi-byte field is little-endian and explicitly serialized.
//!
//! A connection carries exactly one conversation:
//!
//! ```text
//! data:    client  SUBMIT{spec, offset}
//!          server  ACCEPT{job_id, offset, total}      (or REJECT)
//!                  CHUNK{offset, bytes}*
//!                  DONE{total, checksum}
//! control: client  DRAIN_REQ
//!          server  DRAIN_ACK{running, dropped}
//! health:  client  STATUS_REQ
//!          server  STATUS_ACK{queue, pool, cache, counters}
//! ```
//!
//! Client→server frames are tiny by construction, so the server reads
//! them under the [`MAX_REQUEST_FRAME`] cap — a garbled or hostile
//! length prefix is rejected before any allocation, long before the
//! transport's 256 MiB corruption tripwire.

use std::io::{self, Read, Write};
use std::time::Duration;

use crate::frame::{build_raw_frame, read_raw_frame, MAGIC, MAX_FRAME};
use pa_graph::io::Fnv1a;

/// Serve protocol version, negotiated in every `SUBMIT`/`DRAIN_REQ`/
/// `STATUS_REQ`; bumped on any incompatible change to message layouts
/// *or* to the canonical job encoding (the job-id function is part of
/// the wire contract). v2 added the `JobTimeout`/`Overloaded` reject
/// codes and the `STATUS_REQ`/`STATUS_ACK` pair.
pub const SERVE_VERSION: u32 = 2;

/// Upper bound on any client→server frame. Requests are fixed-size and
/// small; anything larger is garbage or abuse and is rejected before
/// allocation.
pub const MAX_REQUEST_FRAME: usize = 1024;

/// Kind byte of a `SUBMIT` frame (client → server).
pub const KIND_SUBMIT: u8 = 0x41;
/// Kind byte of an `ACCEPT` frame (server → client).
pub const KIND_ACCEPT: u8 = 0x42;
/// Kind byte of a `REJECT` frame (server → client).
pub const KIND_REJECT: u8 = 0x43;
/// Kind byte of a `CHUNK` frame (server → client).
pub const KIND_CHUNK: u8 = 0x44;
/// Kind byte of a `DONE` frame (server → client).
pub const KIND_DONE: u8 = 0x45;
/// Kind byte of a `DRAIN_REQ` frame (client → server).
pub const KIND_DRAIN_REQ: u8 = 0x46;
/// Kind byte of a `DRAIN_ACK` frame (server → client).
pub const KIND_DRAIN_ACK: u8 = 0x47;
/// Kind byte of a `STATUS_REQ` frame (client → server).
pub const KIND_STATUS_REQ: u8 = 0x48;
/// Kind byte of a `STATUS_ACK` frame (server → client).
pub const KIND_STATUS_ACK: u8 = 0x49;

/// Length of [`JobSpec::canonical_bytes`].
pub const JOB_CANONICAL_LEN: usize = 48;

/// `SUBMIT` payload length: magic, version, canonical job, offset.
const SUBMIT_LEN: usize = 4 + 4 + JOB_CANONICAL_LEN + 8;

/// The raw parameter tuple of a generation job, as it crosses the wire.
///
/// This is pure data — the serve layer never interprets it beyond
/// hashing; `pa-core`'s `job::JobDescriptor` owns validation and the
/// mapping onto engines, and encodes the **identical** canonical bytes
/// (pinned by a cross-crate test), so both sides of the wire agree on
/// [`JobSpec::job_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Number of nodes `n`.
    pub n: u64,
    /// Edges per new node `x`.
    pub x: u64,
    /// Copy-model probability `p` as IEEE-754 bits.
    pub p_bits: u64,
    /// RNG seed.
    pub seed: u64,
    /// Model parameter as IEEE-754 bits (0 for plain `pa`).
    pub alpha_bits: u64,
    /// Rank count the byte stream is laid out for (part of identity:
    /// the edge *set* is rank-independent, the byte *order* is not).
    pub ranks: u32,
    /// Partition-scheme discriminant.
    pub scheme_id: u8,
    /// Engine selector.
    pub engine_id: u8,
    /// Attachment-model discriminant.
    pub model_id: u8,
    /// Edge-format discriminant.
    pub format_id: u8,
}

impl JobSpec {
    /// The canonical encoding job identity is defined over: five `u64`
    /// fields, one `u32`, four id bytes, all little-endian, fixed order.
    pub fn canonical_bytes(&self) -> [u8; JOB_CANONICAL_LEN] {
        let mut out = [0u8; JOB_CANONICAL_LEN];
        out[0..8].copy_from_slice(&self.n.to_le_bytes());
        out[8..16].copy_from_slice(&self.x.to_le_bytes());
        out[16..24].copy_from_slice(&self.p_bits.to_le_bytes());
        out[24..32].copy_from_slice(&self.seed.to_le_bytes());
        out[32..40].copy_from_slice(&self.alpha_bits.to_le_bytes());
        out[40..44].copy_from_slice(&self.ranks.to_le_bytes());
        out[44] = self.scheme_id;
        out[45] = self.engine_id;
        out[46] = self.model_id;
        out[47] = self.format_id;
        out
    }

    /// Decode [`JobSpec::canonical_bytes`] (infallible: every byte
    /// pattern is *some* spec; whether it names a runnable job is the
    /// runner's validation question, answered with a `REJECT`).
    pub fn from_canonical(bytes: &[u8; JOB_CANONICAL_LEN]) -> JobSpec {
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        JobSpec {
            n: u64_at(0),
            x: u64_at(8),
            p_bits: u64_at(16),
            seed: u64_at(24),
            alpha_bits: u64_at(32),
            ranks: u32::from_le_bytes(bytes[40..44].try_into().unwrap()),
            scheme_id: bytes[44],
            engine_id: bytes[45],
            model_id: bytes[46],
            format_id: bytes[47],
        }
    }

    /// Stable job identity: FNV-1a over the canonical encoding. Equal
    /// tuples hash equal on every host and build, which is what makes
    /// caching, coalescing and resume sound.
    pub fn job_id(&self) -> u64 {
        Fnv1a::hash(&self.canonical_bytes())
    }
}

/// Why a submission was turned away. The discriminants are on-wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The request is malformed or names an invalid/unknown job
    /// (engine rules violated, unknown discriminants, bad payload).
    BadRequest = 1,
    /// The job queue is at capacity; retry after the hinted delay.
    QueueFull = 2,
    /// The server is draining and admits no new work; a queued job
    /// cancelled by a drain also reports this code.
    Draining = 3,
    /// The client speaks a different serve-protocol version.
    UnsupportedVersion = 4,
    /// The resume offset lies beyond the artifact's end.
    BadOffset = 5,
    /// The job was admitted but its run failed; the message carries the
    /// runner's error. The failure is not cached — a later submit
    /// retries the run (until the server's per-tuple failure budget is
    /// spent, after which the same code reports budget exhaustion).
    JobFailed = 6,
    /// The job ran past the server's per-job deadline and was abandoned.
    /// Transient by classification: a retry lands on a fresh run.
    JobTimeout = 7,
    /// The server is at its connection cap; retry after the hinted
    /// delay.
    Overloaded = 8,
}

impl RejectCode {
    /// Decode an on-wire code byte.
    pub fn from_byte(b: u8) -> Option<RejectCode> {
        match b {
            1 => Some(RejectCode::BadRequest),
            2 => Some(RejectCode::QueueFull),
            3 => Some(RejectCode::Draining),
            4 => Some(RejectCode::UnsupportedVersion),
            5 => Some(RejectCode::BadOffset),
            6 => Some(RejectCode::JobFailed),
            7 => Some(RejectCode::JobTimeout),
            8 => Some(RejectCode::Overloaded),
            _ => None,
        }
    }

    /// Short stable name for logs and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            RejectCode::BadRequest => "bad-request",
            RejectCode::QueueFull => "queue-full",
            RejectCode::Draining => "draining",
            RejectCode::UnsupportedVersion => "unsupported-version",
            RejectCode::BadOffset => "bad-offset",
            RejectCode::JobFailed => "job-failed",
            RejectCode::JobTimeout => "job-timeout",
            RejectCode::Overloaded => "overloaded",
        }
    }

    /// Whether a client should retry the same request later.
    /// [`RejectCode::QueueFull`], [`RejectCode::JobTimeout`] and
    /// [`RejectCode::Overloaded`] are transient resource/deadline
    /// conditions; every other code means the same request will keep
    /// failing. ([`RejectCode::JobFailed`] is deliberately *not*
    /// flagged — the run may be deterministic-broken — but failures are
    /// not cached server-side, so `fetch` still retries it through its
    /// bounded attempt budget.)
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RejectCode::QueueFull | RejectCode::JobTimeout | RejectCode::Overloaded
        )
    }

    /// Every code, in discriminant order (discriminants are `1..=N`
    /// with no gaps; pinned by a test).
    pub const ALL: [RejectCode; REJECT_CODE_COUNT] = [
        RejectCode::BadRequest,
        RejectCode::QueueFull,
        RejectCode::Draining,
        RejectCode::UnsupportedVersion,
        RejectCode::BadOffset,
        RejectCode::JobFailed,
        RejectCode::JobTimeout,
        RejectCode::Overloaded,
    ];
}

/// Number of [`RejectCode`] variants (sizes the per-code counters).
pub const REJECT_CODE_COUNT: usize = 8;

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters reported by `Server::stats`, `Server::join` and the
/// `STATUS_ACK` frame. Monotonic over a daemon's lifetime; after a
/// quiesced drain they reconcile as
/// `jobs_admitted == jobs_run + jobs_failed + jobs_drained`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted to the queue (each admission leads to exactly one
    /// run attempt; lets tests sequence submissions deterministically).
    pub jobs_admitted: u64,
    /// Jobs actually executed to completion (coalesced/cached submits
    /// don't re-run).
    pub jobs_run: u64,
    /// Submits served from an existing entry — a run in flight or a
    /// cached artifact — instead of a fresh run.
    pub jobs_coalesced: u64,
    /// Rejections sent, of any code (see [`ServeStats::rejects_by`]).
    pub rejects: u64,
    /// Queued jobs cancelled by a drain.
    pub jobs_drained: u64,
    /// Artifact bytes streamed to completion (suffix length on resume).
    pub bytes_streamed: u64,
    /// Run attempts that ended in failure of any kind (runner error,
    /// runner panic, deadline timeout, publish error).
    pub jobs_failed: u64,
    /// The subset of [`ServeStats::jobs_failed`] abandoned at the
    /// per-job deadline.
    pub jobs_timed_out: u64,
    /// Runner panics caught by worker supervision (the pool survives
    /// each one).
    pub worker_panics: u64,
    /// Artifacts rebuilt into the cache by the startup recovery scan.
    pub jobs_recovered: u64,
    /// Stale `*.tmp` files deleted by the startup recovery scan.
    pub tmp_cleaned: u64,
    /// Completed artifacts evicted to hold the cache byte quota.
    pub jobs_evicted: u64,
    /// Rejections by code, indexed `code as u8 - 1` (see
    /// [`RejectCode::ALL`]); sums to [`ServeStats::rejects`].
    pub rejects_by: [u64; REJECT_CODE_COUNT],
}

impl ServeStats {
    /// Count one rejection under its code.
    pub(crate) fn note_reject(&mut self, code: RejectCode) {
        self.rejects += 1;
        self.rejects_by[(code as u8 - 1) as usize] += 1;
    }

    /// Rejections sent with `code`.
    pub fn rejects_for(&self, code: RejectCode) -> u64 {
        self.rejects_by[(code as u8 - 1) as usize]
    }

    /// The scalar counters in wire order.
    fn to_words(self) -> [u64; STAT_WORDS] {
        [
            self.jobs_admitted,
            self.jobs_run,
            self.jobs_coalesced,
            self.rejects,
            self.jobs_drained,
            self.bytes_streamed,
            self.jobs_failed,
            self.jobs_timed_out,
            self.worker_panics,
            self.jobs_recovered,
            self.tmp_cleaned,
            self.jobs_evicted,
        ]
    }

    fn from_words(w: &[u64; STAT_WORDS], rejects_by: [u64; REJECT_CODE_COUNT]) -> ServeStats {
        ServeStats {
            jobs_admitted: w[0],
            jobs_run: w[1],
            jobs_coalesced: w[2],
            rejects: w[3],
            jobs_drained: w[4],
            bytes_streamed: w[5],
            jobs_failed: w[6],
            jobs_timed_out: w[7],
            worker_panics: w[8],
            jobs_recovered: w[9],
            tmp_cleaned: w[10],
            jobs_evicted: w[11],
            rejects_by,
        }
    }
}

/// Scalar `u64` counters in a `STATUS_ACK`, excluding the per-code
/// reject array.
const STAT_WORDS: usize = 12;

/// A point-in-time health snapshot of a serve daemon, carried by
/// `STATUS_ACK` and returned by `Server::status` / [`super::status`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStatus {
    /// Jobs waiting in the queue.
    pub queued: u32,
    /// Jobs currently executing.
    pub running: u32,
    /// Open client connections (a wire `STATUS_REQ` counts itself).
    pub active_conns: u32,
    /// Healthy workers (the configured pool size, minus any currently
    /// wedged, plus their already-spawned replacements).
    pub workers: u32,
    /// Workers stuck past their job's deadline, already replaced and
    /// awaiting retirement.
    pub workers_wedged: u32,
    /// Completed artifacts in the cache.
    pub cache_artifacts: u32,
    /// Whether a drain has been observed.
    pub draining: bool,
    /// Total bytes of completed artifacts in the cache.
    pub cache_bytes: u64,
    /// Lifetime counters.
    pub stats: ServeStats,
}

/// `STATUS_ACK` payload length: six `u32` gauges, a drain flag byte,
/// the cache byte gauge, the scalar counters, the per-code rejects.
const STATUS_ACK_LEN: usize = 6 * 4 + 1 + 8 + STAT_WORDS * 8 + REJECT_CODE_COUNT * 8;

/// A parsed serve message (either direction).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMsg {
    /// Job submission. `offset` is the first artifact byte the client
    /// wants (0 for a fresh fetch, the durable file length on resume).
    Submit {
        /// The job parameter tuple.
        spec: JobSpec,
        /// First byte wanted.
        offset: u64,
    },
    /// The job is (now) complete; streaming starts at `offset`.
    Accept {
        /// Identity echo — [`JobSpec::job_id`] as the server computed it.
        job_id: u64,
        /// Offset echo.
        offset: u64,
        /// Total artifact length in bytes.
        total: u64,
    },
    /// The request was turned away.
    Reject {
        /// Why.
        code: RejectCode,
        /// Retry hint (meaningful for retryable codes, zero otherwise).
        retry_after: Duration,
        /// Human-readable detail.
        msg: String,
    },
    /// One contiguous slice of the artifact.
    Chunk {
        /// Absolute offset of the first byte of `data`.
        offset: u64,
        /// The bytes.
        data: Vec<u8>,
    },
    /// The stream is complete.
    Done {
        /// Total artifact length (echo).
        total: u64,
        /// FNV-1a digest of the *whole* artifact, byte 0 to `total` —
        /// resumed clients verify the stitched file, not just the tail.
        checksum: u64,
    },
    /// Control: wind the daemon down.
    DrainReq,
    /// Control reply: drain observed.
    DrainAck {
        /// Jobs still running (they will finish and stream).
        running: u32,
        /// Queued jobs dropped with a [`RejectCode::Draining`] rejection.
        dropped: u32,
    },
    /// Health: ask for a status snapshot.
    StatusReq,
    /// Health reply: the snapshot.
    Status(ServeStatus),
}

/// Write a `SUBMIT` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_submit(w: &mut impl Write, spec: &JobSpec, offset: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + SUBMIT_LEN);
    build_raw_frame(&mut buf, KIND_SUBMIT, |b| {
        b.extend_from_slice(&MAGIC.to_le_bytes());
        b.extend_from_slice(&SERVE_VERSION.to_le_bytes());
        b.extend_from_slice(&spec.canonical_bytes());
        b.extend_from_slice(&offset.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write an `ACCEPT` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_accept(w: &mut impl Write, job_id: u64, offset: u64, total: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 24);
    build_raw_frame(&mut buf, KIND_ACCEPT, |b| {
        b.extend_from_slice(&job_id.to_le_bytes());
        b.extend_from_slice(&offset.to_le_bytes());
        b.extend_from_slice(&total.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write a `REJECT` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_reject(
    w: &mut impl Write,
    code: RejectCode,
    retry_after: Duration,
    msg: &str,
) -> io::Result<()> {
    let retry_ms = u32::try_from(retry_after.as_millis()).unwrap_or(u32::MAX);
    let mut buf = Vec::with_capacity(5 + 5 + msg.len());
    build_raw_frame(&mut buf, KIND_REJECT, |b| {
        b.push(code as u8);
        b.extend_from_slice(&retry_ms.to_le_bytes());
        b.extend_from_slice(msg.as_bytes());
    });
    w.write_all(&buf)
}

/// Write a `CHUNK` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_chunk(w: &mut impl Write, offset: u64, data: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 8 + data.len());
    build_raw_frame(&mut buf, KIND_CHUNK, |b| {
        b.extend_from_slice(&offset.to_le_bytes());
        b.extend_from_slice(data);
    });
    w.write_all(&buf)
}

/// Write a `DONE` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_done(w: &mut impl Write, total: u64, checksum: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 16);
    build_raw_frame(&mut buf, KIND_DONE, |b| {
        b.extend_from_slice(&total.to_le_bytes());
        b.extend_from_slice(&checksum.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write a `DRAIN_REQ` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_drain_req(w: &mut impl Write) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 8);
    build_raw_frame(&mut buf, KIND_DRAIN_REQ, |b| {
        b.extend_from_slice(&MAGIC.to_le_bytes());
        b.extend_from_slice(&SERVE_VERSION.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write a `DRAIN_ACK` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_drain_ack(w: &mut impl Write, running: u32, dropped: u32) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 8);
    build_raw_frame(&mut buf, KIND_DRAIN_ACK, |b| {
        b.extend_from_slice(&running.to_le_bytes());
        b.extend_from_slice(&dropped.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write a `STATUS_REQ` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_status_req(w: &mut impl Write) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 8);
    build_raw_frame(&mut buf, KIND_STATUS_REQ, |b| {
        b.extend_from_slice(&MAGIC.to_le_bytes());
        b.extend_from_slice(&SERVE_VERSION.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write a `STATUS_ACK` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_status_ack(w: &mut impl Write, status: &ServeStatus) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + STATUS_ACK_LEN);
    build_raw_frame(&mut buf, KIND_STATUS_ACK, |b| {
        for gauge in [
            status.queued,
            status.running,
            status.active_conns,
            status.workers,
            status.workers_wedged,
            status.cache_artifacts,
        ] {
            b.extend_from_slice(&gauge.to_le_bytes());
        }
        b.push(u8::from(status.draining));
        b.extend_from_slice(&status.cache_bytes.to_le_bytes());
        for word in status.stats.to_words() {
            b.extend_from_slice(&word.to_le_bytes());
        }
        for count in status.stats.rejects_by {
            b.extend_from_slice(&count.to_le_bytes());
        }
    });
    w.write_all(&buf)
}

/// Errors a request can fail parsing with, split by how the server must
/// answer: version mismatches get their own reject code so old clients
/// learn *why* instead of a generic bad-request.
#[derive(Debug)]
pub(crate) enum RequestError {
    /// Not (this version of) a serve client.
    Version(String),
    /// Structurally broken request.
    Malformed(String),
}

/// Parse a client→server request (`SUBMIT` or `DRAIN_REQ`) from its raw
/// kind byte and payload, validating magic and version.
pub(crate) fn parse_request(kind: u8, payload: &[u8]) -> Result<ServeMsg, RequestError> {
    let check_preamble = |what: &str| -> Result<(), RequestError> {
        let magic = u32::from_le_bytes(payload[0..4].try_into().unwrap());
        let version = u32::from_le_bytes(payload[4..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(RequestError::Malformed(format!(
                "{what}: bad magic {magic:#x} (not a pa-net serve client?)"
            )));
        }
        if version != SERVE_VERSION {
            return Err(RequestError::Version(format!(
                "{what}: peer speaks serve protocol v{version}, this build v{SERVE_VERSION}"
            )));
        }
        Ok(())
    };
    match kind {
        KIND_SUBMIT => {
            if payload.len() != SUBMIT_LEN {
                return Err(RequestError::Malformed(format!(
                    "SUBMIT payload must be {SUBMIT_LEN} bytes, got {}",
                    payload.len()
                )));
            }
            check_preamble("SUBMIT")?;
            let spec =
                JobSpec::from_canonical(payload[8..8 + JOB_CANONICAL_LEN].try_into().unwrap());
            let offset = u64::from_le_bytes(payload[8 + JOB_CANONICAL_LEN..].try_into().unwrap());
            Ok(ServeMsg::Submit { spec, offset })
        }
        KIND_DRAIN_REQ => {
            if payload.len() != 8 {
                return Err(RequestError::Malformed(format!(
                    "DRAIN_REQ payload must be 8 bytes, got {}",
                    payload.len()
                )));
            }
            check_preamble("DRAIN_REQ")?;
            Ok(ServeMsg::DrainReq)
        }
        KIND_STATUS_REQ => {
            if payload.len() != 8 {
                return Err(RequestError::Malformed(format!(
                    "STATUS_REQ payload must be 8 bytes, got {}",
                    payload.len()
                )));
            }
            check_preamble("STATUS_REQ")?;
            Ok(ServeMsg::StatusReq)
        }
        other => Err(RequestError::Malformed(format!(
            "unknown request kind {other:#04x}"
        ))),
    }
}

/// Read one server→client reply frame.
///
/// # Errors
///
/// `InvalidData` on unknown kinds, wrong payload lengths, unknown
/// reject codes, or non-UTF-8 reject messages; I/O errors pass through.
pub fn read_reply(r: &mut impl Read) -> io::Result<ServeMsg> {
    let mut payload = Vec::new();
    let kind = read_raw_frame(r, &mut payload, MAX_FRAME)?;
    parse_reply(kind, &payload).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
}

/// Parse a server→client reply from its raw kind byte and payload.
fn parse_reply(kind: u8, payload: &[u8]) -> Result<ServeMsg, String> {
    let want = |n: usize, what: &str| -> Result<(), String> {
        if payload.len() != n {
            return Err(format!(
                "{what} payload must be {n} bytes, got {}",
                payload.len()
            ));
        }
        Ok(())
    };
    let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().unwrap());
    match kind {
        KIND_ACCEPT => {
            want(24, "ACCEPT")?;
            Ok(ServeMsg::Accept {
                job_id: u64_at(0),
                offset: u64_at(8),
                total: u64_at(16),
            })
        }
        KIND_REJECT => {
            if payload.len() < 5 {
                return Err(format!("REJECT payload of {} bytes", payload.len()));
            }
            let code = RejectCode::from_byte(payload[0])
                .ok_or_else(|| format!("unknown reject code {}", payload[0]))?;
            let retry_ms = u32::from_le_bytes(payload[1..5].try_into().unwrap());
            let msg = std::str::from_utf8(&payload[5..])
                .map_err(|_| "REJECT message is not UTF-8".to_string())?
                .to_string();
            Ok(ServeMsg::Reject {
                code,
                retry_after: Duration::from_millis(u64::from(retry_ms)),
                msg,
            })
        }
        KIND_CHUNK => {
            if payload.len() < 8 {
                return Err(format!("CHUNK payload of {} bytes", payload.len()));
            }
            Ok(ServeMsg::Chunk {
                offset: u64_at(0),
                data: payload[8..].to_vec(),
            })
        }
        KIND_DONE => {
            want(16, "DONE")?;
            Ok(ServeMsg::Done {
                total: u64_at(0),
                checksum: u64_at(8),
            })
        }
        KIND_DRAIN_ACK => {
            want(8, "DRAIN_ACK")?;
            Ok(ServeMsg::DrainAck {
                running: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
                dropped: u32::from_le_bytes(payload[4..8].try_into().unwrap()),
            })
        }
        KIND_STATUS_ACK => {
            want(STATUS_ACK_LEN, "STATUS_ACK")?;
            let u32_at = |i: usize| u32::from_le_bytes(payload[i..i + 4].try_into().unwrap());
            let mut words = [0u64; STAT_WORDS];
            for (i, w) in words.iter_mut().enumerate() {
                *w = u64_at(33 + i * 8);
            }
            let mut rejects_by = [0u64; REJECT_CODE_COUNT];
            for (i, c) in rejects_by.iter_mut().enumerate() {
                *c = u64_at(33 + STAT_WORDS * 8 + i * 8);
            }
            Ok(ServeMsg::Status(ServeStatus {
                queued: u32_at(0),
                running: u32_at(4),
                active_conns: u32_at(8),
                workers: u32_at(12),
                workers_wedged: u32_at(16),
                cache_artifacts: u32_at(20),
                draining: payload[24] != 0,
                cache_bytes: u64_at(25),
                stats: ServeStats::from_words(&words, rejects_by),
            }))
        }
        other => Err(format!("unknown reply kind {other:#04x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            n: 10_000,
            x: 4,
            p_bits: 0.5f64.to_bits(),
            seed: 7,
            alpha_bits: 0,
            ranks: 4,
            scheme_id: 2,
            engine_id: 2,
            model_id: 0,
            format_id: 1,
        }
    }

    #[test]
    fn canonical_bytes_round_trip_and_pin_the_layout() {
        let s = spec();
        let bytes = s.canonical_bytes();
        assert_eq!(JobSpec::from_canonical(&bytes), s);
        // Pinned layout: wire identity; renumbering is a version bump.
        assert_eq!(&bytes[0..8], &10_000u64.to_le_bytes());
        assert_eq!(&bytes[40..44], &4u32.to_le_bytes());
        assert_eq!(&bytes[44..48], &[2, 2, 0, 1]);
    }

    #[test]
    fn submit_round_trips() {
        let mut wire = Vec::new();
        write_submit(&mut wire, &spec(), 4096).unwrap();
        assert_eq!(wire.len(), 4 + 1 + SUBMIT_LEN);
        let mut payload = Vec::new();
        let kind = read_raw_frame(&mut &wire[..], &mut payload, MAX_REQUEST_FRAME).unwrap();
        assert_eq!(kind, KIND_SUBMIT);
        let msg = parse_request(kind, &payload).unwrap();
        assert_eq!(
            msg,
            ServeMsg::Submit {
                spec: spec(),
                offset: 4096
            }
        );
    }

    #[test]
    fn submit_rejects_bad_magic_version_and_length() {
        let mut wire = Vec::new();
        write_submit(&mut wire, &spec(), 0).unwrap();
        let payload = &wire[5..];

        let mut bad_magic = payload.to_vec();
        bad_magic[0] ^= 0xff;
        let err = parse_request(KIND_SUBMIT, &bad_magic).unwrap_err();
        assert!(
            matches!(&err, RequestError::Malformed(m) if m.contains("magic")),
            "{err:?}"
        );

        let mut bad_version = payload.to_vec();
        bad_version[4] = 99;
        let err = parse_request(KIND_SUBMIT, &bad_version).unwrap_err();
        assert!(
            matches!(&err, RequestError::Version(m) if m.contains("v99")),
            "{err:?}"
        );

        let err = parse_request(KIND_SUBMIT, &payload[..10]).unwrap_err();
        assert!(
            matches!(&err, RequestError::Malformed(m) if m.contains("64 bytes")),
            "{err:?}"
        );

        let err = parse_request(0x7f, payload).unwrap_err();
        assert!(
            matches!(&err, RequestError::Malformed(m) if m.contains("unknown request")),
            "{err:?}"
        );
    }

    #[test]
    fn replies_round_trip() {
        let cases: Vec<(Vec<u8>, ServeMsg)> = {
            let mut v = Vec::new();
            let mut w = Vec::new();
            write_accept(&mut w, 0xdead, 16, 2048).unwrap();
            v.push((
                w.clone(),
                ServeMsg::Accept {
                    job_id: 0xdead,
                    offset: 16,
                    total: 2048,
                },
            ));
            w.clear();
            write_reject(
                &mut w,
                RejectCode::QueueFull,
                Duration::from_millis(250),
                "full",
            )
            .unwrap();
            v.push((
                w.clone(),
                ServeMsg::Reject {
                    code: RejectCode::QueueFull,
                    retry_after: Duration::from_millis(250),
                    msg: "full".into(),
                },
            ));
            w.clear();
            write_chunk(&mut w, 64, b"edges").unwrap();
            v.push((
                w.clone(),
                ServeMsg::Chunk {
                    offset: 64,
                    data: b"edges".to_vec(),
                },
            ));
            w.clear();
            write_done(&mut w, 2048, 0xbeef).unwrap();
            v.push((
                w.clone(),
                ServeMsg::Done {
                    total: 2048,
                    checksum: 0xbeef,
                },
            ));
            w.clear();
            write_drain_ack(&mut w, 2, 5).unwrap();
            v.push((
                w.clone(),
                ServeMsg::DrainAck {
                    running: 2,
                    dropped: 5,
                },
            ));
            v
        };
        for (wire, expect) in cases {
            let got = read_reply(&mut &wire[..]).unwrap();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn drain_req_round_trips_and_checks_preamble() {
        let mut wire = Vec::new();
        write_drain_req(&mut wire).unwrap();
        let mut payload = Vec::new();
        let kind = read_raw_frame(&mut &wire[..], &mut payload, MAX_REQUEST_FRAME).unwrap();
        assert_eq!(kind, KIND_DRAIN_REQ);
        assert_eq!(parse_request(kind, &payload).unwrap(), ServeMsg::DrainReq);

        let err = parse_request(KIND_DRAIN_REQ, &payload[..4]).unwrap_err();
        assert!(matches!(err, RequestError::Malformed(_)));
    }

    #[test]
    fn reject_codes_round_trip_and_classify_retryability() {
        for (i, code) in RejectCode::ALL.into_iter().enumerate() {
            assert_eq!(code as u8, i as u8 + 1, "{code}: discriminants are 1..=N");
            assert_eq!(RejectCode::from_byte(code as u8), Some(code));
            let transient = matches!(
                code,
                RejectCode::QueueFull | RejectCode::JobTimeout | RejectCode::Overloaded
            );
            assert_eq!(code.is_retryable(), transient, "{code}");
        }
        assert_eq!(RejectCode::from_byte(0), None);
        assert_eq!(RejectCode::from_byte(REJECT_CODE_COUNT as u8 + 1), None);
    }

    #[test]
    fn status_round_trips_with_every_field_distinct() {
        let mut stats = ServeStats {
            jobs_admitted: 101,
            jobs_run: 102,
            jobs_coalesced: 103,
            rejects: 104,
            jobs_drained: 105,
            bytes_streamed: 106,
            jobs_failed: 107,
            jobs_timed_out: 108,
            worker_panics: 109,
            jobs_recovered: 110,
            tmp_cleaned: 111,
            jobs_evicted: 112,
            rejects_by: [0; REJECT_CODE_COUNT],
        };
        for (i, c) in stats.rejects_by.iter_mut().enumerate() {
            *c = 200 + i as u64;
        }
        let status = ServeStatus {
            queued: 1,
            running: 2,
            active_conns: 3,
            workers: 4,
            workers_wedged: 5,
            cache_artifacts: 6,
            draining: true,
            cache_bytes: 7_000_000_007,
            stats,
        };
        let mut wire = Vec::new();
        write_status_ack(&mut wire, &status).unwrap();
        assert_eq!(wire.len(), 5 + STATUS_ACK_LEN);
        assert_eq!(
            read_reply(&mut &wire[..]).unwrap(),
            ServeMsg::Status(status)
        );
    }

    #[test]
    fn status_req_round_trips_and_checks_preamble() {
        let mut wire = Vec::new();
        write_status_req(&mut wire).unwrap();
        let mut payload = Vec::new();
        let kind = read_raw_frame(&mut &wire[..], &mut payload, MAX_REQUEST_FRAME).unwrap();
        assert_eq!(kind, KIND_STATUS_REQ);
        assert_eq!(parse_request(kind, &payload).unwrap(), ServeMsg::StatusReq);

        let mut bad_version = payload.clone();
        bad_version[4] = 99;
        let err = parse_request(KIND_STATUS_REQ, &bad_version).unwrap_err();
        assert!(matches!(err, RequestError::Version(_)));
    }

    #[test]
    fn per_code_reject_counters_track_total() {
        let mut stats = ServeStats::default();
        stats.note_reject(RejectCode::QueueFull);
        stats.note_reject(RejectCode::QueueFull);
        stats.note_reject(RejectCode::Overloaded);
        assert_eq!(stats.rejects, 3);
        assert_eq!(stats.rejects_for(RejectCode::QueueFull), 2);
        assert_eq!(stats.rejects_for(RejectCode::Overloaded), 1);
        assert_eq!(stats.rejects_by.iter().sum::<u64>(), stats.rejects);
    }

    #[test]
    fn job_id_differs_per_field_and_matches_manual_fnv() {
        let s = spec();
        assert_eq!(s.job_id(), Fnv1a::hash(&s.canonical_bytes()));
        let mut other = s;
        other.ranks = 8;
        assert_ne!(other.job_id(), s.job_id());
    }

    #[test]
    fn serve_kinds_are_disjoint_from_transport_kinds() {
        for kind in [
            KIND_SUBMIT,
            KIND_ACCEPT,
            KIND_REJECT,
            KIND_CHUNK,
            KIND_DONE,
            KIND_DRAIN_REQ,
            KIND_DRAIN_ACK,
            KIND_STATUS_REQ,
            KIND_STATUS_ACK,
        ] {
            assert!(
                crate::frame::Kind::from_byte(kind).is_none(),
                "serve kind {kind:#04x} collides with a transport kind"
            );
        }
    }
}
