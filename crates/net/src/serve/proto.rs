//! The serve wire protocol.
//!
//! Serve messages ride the same `len:u32 kind:u8 payload` frames as the
//! rank-to-rank transport (see `crate::frame`), in a disjoint kind-byte
//! space (`0x41..`), so a stray engine peer dialing a serve port — or
//! vice versa — fails with a named error instead of misparsing. Every
//! multi-byte field is little-endian and explicitly serialized.
//!
//! A connection carries exactly one conversation:
//!
//! ```text
//! data:    client  SUBMIT{spec, offset}
//!          server  ACCEPT{job_id, offset, total}      (or REJECT)
//!                  CHUNK{offset, bytes}*
//!                  DONE{total, checksum}
//! control: client  DRAIN_REQ
//!          server  DRAIN_ACK{running, dropped}
//! ```
//!
//! Client→server frames are tiny by construction, so the server reads
//! them under the [`MAX_REQUEST_FRAME`] cap — a garbled or hostile
//! length prefix is rejected before any allocation, long before the
//! transport's 256 MiB corruption tripwire.

use std::io::{self, Read, Write};
use std::time::Duration;

use crate::frame::{build_raw_frame, read_raw_frame, MAGIC, MAX_FRAME};
use pa_graph::io::Fnv1a;

/// Serve protocol version, negotiated in every `SUBMIT`/`DRAIN_REQ`;
/// bumped on any incompatible change to message layouts *or* to the
/// canonical job encoding (the job-id function is part of the wire
/// contract).
pub const SERVE_VERSION: u32 = 1;

/// Upper bound on any client→server frame. Requests are fixed-size and
/// small; anything larger is garbage or abuse and is rejected before
/// allocation.
pub const MAX_REQUEST_FRAME: usize = 1024;

/// Kind byte of a `SUBMIT` frame (client → server).
pub const KIND_SUBMIT: u8 = 0x41;
/// Kind byte of an `ACCEPT` frame (server → client).
pub const KIND_ACCEPT: u8 = 0x42;
/// Kind byte of a `REJECT` frame (server → client).
pub const KIND_REJECT: u8 = 0x43;
/// Kind byte of a `CHUNK` frame (server → client).
pub const KIND_CHUNK: u8 = 0x44;
/// Kind byte of a `DONE` frame (server → client).
pub const KIND_DONE: u8 = 0x45;
/// Kind byte of a `DRAIN_REQ` frame (client → server).
pub const KIND_DRAIN_REQ: u8 = 0x46;
/// Kind byte of a `DRAIN_ACK` frame (server → client).
pub const KIND_DRAIN_ACK: u8 = 0x47;

/// Length of [`JobSpec::canonical_bytes`].
pub const JOB_CANONICAL_LEN: usize = 48;

/// `SUBMIT` payload length: magic, version, canonical job, offset.
const SUBMIT_LEN: usize = 4 + 4 + JOB_CANONICAL_LEN + 8;

/// The raw parameter tuple of a generation job, as it crosses the wire.
///
/// This is pure data — the serve layer never interprets it beyond
/// hashing; `pa-core`'s `job::JobDescriptor` owns validation and the
/// mapping onto engines, and encodes the **identical** canonical bytes
/// (pinned by a cross-crate test), so both sides of the wire agree on
/// [`JobSpec::job_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Number of nodes `n`.
    pub n: u64,
    /// Edges per new node `x`.
    pub x: u64,
    /// Copy-model probability `p` as IEEE-754 bits.
    pub p_bits: u64,
    /// RNG seed.
    pub seed: u64,
    /// Model parameter as IEEE-754 bits (0 for plain `pa`).
    pub alpha_bits: u64,
    /// Rank count the byte stream is laid out for (part of identity:
    /// the edge *set* is rank-independent, the byte *order* is not).
    pub ranks: u32,
    /// Partition-scheme discriminant.
    pub scheme_id: u8,
    /// Engine selector.
    pub engine_id: u8,
    /// Attachment-model discriminant.
    pub model_id: u8,
    /// Edge-format discriminant.
    pub format_id: u8,
}

impl JobSpec {
    /// The canonical encoding job identity is defined over: five `u64`
    /// fields, one `u32`, four id bytes, all little-endian, fixed order.
    pub fn canonical_bytes(&self) -> [u8; JOB_CANONICAL_LEN] {
        let mut out = [0u8; JOB_CANONICAL_LEN];
        out[0..8].copy_from_slice(&self.n.to_le_bytes());
        out[8..16].copy_from_slice(&self.x.to_le_bytes());
        out[16..24].copy_from_slice(&self.p_bits.to_le_bytes());
        out[24..32].copy_from_slice(&self.seed.to_le_bytes());
        out[32..40].copy_from_slice(&self.alpha_bits.to_le_bytes());
        out[40..44].copy_from_slice(&self.ranks.to_le_bytes());
        out[44] = self.scheme_id;
        out[45] = self.engine_id;
        out[46] = self.model_id;
        out[47] = self.format_id;
        out
    }

    /// Decode [`JobSpec::canonical_bytes`] (infallible: every byte
    /// pattern is *some* spec; whether it names a runnable job is the
    /// runner's validation question, answered with a `REJECT`).
    pub fn from_canonical(bytes: &[u8; JOB_CANONICAL_LEN]) -> JobSpec {
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        JobSpec {
            n: u64_at(0),
            x: u64_at(8),
            p_bits: u64_at(16),
            seed: u64_at(24),
            alpha_bits: u64_at(32),
            ranks: u32::from_le_bytes(bytes[40..44].try_into().unwrap()),
            scheme_id: bytes[44],
            engine_id: bytes[45],
            model_id: bytes[46],
            format_id: bytes[47],
        }
    }

    /// Stable job identity: FNV-1a over the canonical encoding. Equal
    /// tuples hash equal on every host and build, which is what makes
    /// caching, coalescing and resume sound.
    pub fn job_id(&self) -> u64 {
        Fnv1a::hash(&self.canonical_bytes())
    }
}

/// Why a submission was turned away. The discriminants are on-wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The request is malformed or names an invalid/unknown job
    /// (engine rules violated, unknown discriminants, bad payload).
    BadRequest = 1,
    /// The job queue is at capacity; retry after the hinted delay.
    QueueFull = 2,
    /// The server is draining and admits no new work; a queued job
    /// cancelled by a drain also reports this code.
    Draining = 3,
    /// The client speaks a different serve-protocol version.
    UnsupportedVersion = 4,
    /// The resume offset lies beyond the artifact's end.
    BadOffset = 5,
    /// The job was admitted but its run failed; the message carries the
    /// runner's error. The failure is not cached — a later submit
    /// retries the run.
    JobFailed = 6,
}

impl RejectCode {
    /// Decode an on-wire code byte.
    pub fn from_byte(b: u8) -> Option<RejectCode> {
        match b {
            1 => Some(RejectCode::BadRequest),
            2 => Some(RejectCode::QueueFull),
            3 => Some(RejectCode::Draining),
            4 => Some(RejectCode::UnsupportedVersion),
            5 => Some(RejectCode::BadOffset),
            6 => Some(RejectCode::JobFailed),
            _ => None,
        }
    }

    /// Short stable name for logs and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            RejectCode::BadRequest => "bad-request",
            RejectCode::QueueFull => "queue-full",
            RejectCode::Draining => "draining",
            RejectCode::UnsupportedVersion => "unsupported-version",
            RejectCode::BadOffset => "bad-offset",
            RejectCode::JobFailed => "job-failed",
        }
    }

    /// Whether a client should retry the same request later.
    /// Only [`RejectCode::QueueFull`] is transient; every other code
    /// means the same request will keep failing.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RejectCode::QueueFull)
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed serve message (either direction).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMsg {
    /// Job submission. `offset` is the first artifact byte the client
    /// wants (0 for a fresh fetch, the durable file length on resume).
    Submit {
        /// The job parameter tuple.
        spec: JobSpec,
        /// First byte wanted.
        offset: u64,
    },
    /// The job is (now) complete; streaming starts at `offset`.
    Accept {
        /// Identity echo — [`JobSpec::job_id`] as the server computed it.
        job_id: u64,
        /// Offset echo.
        offset: u64,
        /// Total artifact length in bytes.
        total: u64,
    },
    /// The request was turned away.
    Reject {
        /// Why.
        code: RejectCode,
        /// Retry hint (meaningful for retryable codes, zero otherwise).
        retry_after: Duration,
        /// Human-readable detail.
        msg: String,
    },
    /// One contiguous slice of the artifact.
    Chunk {
        /// Absolute offset of the first byte of `data`.
        offset: u64,
        /// The bytes.
        data: Vec<u8>,
    },
    /// The stream is complete.
    Done {
        /// Total artifact length (echo).
        total: u64,
        /// FNV-1a digest of the *whole* artifact, byte 0 to `total` —
        /// resumed clients verify the stitched file, not just the tail.
        checksum: u64,
    },
    /// Control: wind the daemon down.
    DrainReq,
    /// Control reply: drain observed.
    DrainAck {
        /// Jobs still running (they will finish and stream).
        running: u32,
        /// Queued jobs dropped with a [`RejectCode::Draining`] rejection.
        dropped: u32,
    },
}

/// Write a `SUBMIT` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_submit(w: &mut impl Write, spec: &JobSpec, offset: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + SUBMIT_LEN);
    build_raw_frame(&mut buf, KIND_SUBMIT, |b| {
        b.extend_from_slice(&MAGIC.to_le_bytes());
        b.extend_from_slice(&SERVE_VERSION.to_le_bytes());
        b.extend_from_slice(&spec.canonical_bytes());
        b.extend_from_slice(&offset.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write an `ACCEPT` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_accept(w: &mut impl Write, job_id: u64, offset: u64, total: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 24);
    build_raw_frame(&mut buf, KIND_ACCEPT, |b| {
        b.extend_from_slice(&job_id.to_le_bytes());
        b.extend_from_slice(&offset.to_le_bytes());
        b.extend_from_slice(&total.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write a `REJECT` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_reject(
    w: &mut impl Write,
    code: RejectCode,
    retry_after: Duration,
    msg: &str,
) -> io::Result<()> {
    let retry_ms = u32::try_from(retry_after.as_millis()).unwrap_or(u32::MAX);
    let mut buf = Vec::with_capacity(5 + 5 + msg.len());
    build_raw_frame(&mut buf, KIND_REJECT, |b| {
        b.push(code as u8);
        b.extend_from_slice(&retry_ms.to_le_bytes());
        b.extend_from_slice(msg.as_bytes());
    });
    w.write_all(&buf)
}

/// Write a `CHUNK` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_chunk(w: &mut impl Write, offset: u64, data: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 8 + data.len());
    build_raw_frame(&mut buf, KIND_CHUNK, |b| {
        b.extend_from_slice(&offset.to_le_bytes());
        b.extend_from_slice(data);
    });
    w.write_all(&buf)
}

/// Write a `DONE` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_done(w: &mut impl Write, total: u64, checksum: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 16);
    build_raw_frame(&mut buf, KIND_DONE, |b| {
        b.extend_from_slice(&total.to_le_bytes());
        b.extend_from_slice(&checksum.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write a `DRAIN_REQ` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_drain_req(w: &mut impl Write) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 8);
    build_raw_frame(&mut buf, KIND_DRAIN_REQ, |b| {
        b.extend_from_slice(&MAGIC.to_le_bytes());
        b.extend_from_slice(&SERVE_VERSION.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Write a `DRAIN_ACK` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_drain_ack(w: &mut impl Write, running: u32, dropped: u32) -> io::Result<()> {
    let mut buf = Vec::with_capacity(5 + 8);
    build_raw_frame(&mut buf, KIND_DRAIN_ACK, |b| {
        b.extend_from_slice(&running.to_le_bytes());
        b.extend_from_slice(&dropped.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Errors a request can fail parsing with, split by how the server must
/// answer: version mismatches get their own reject code so old clients
/// learn *why* instead of a generic bad-request.
#[derive(Debug)]
pub(crate) enum RequestError {
    /// Not (this version of) a serve client.
    Version(String),
    /// Structurally broken request.
    Malformed(String),
}

/// Parse a client→server request (`SUBMIT` or `DRAIN_REQ`) from its raw
/// kind byte and payload, validating magic and version.
pub(crate) fn parse_request(kind: u8, payload: &[u8]) -> Result<ServeMsg, RequestError> {
    let check_preamble = |what: &str| -> Result<(), RequestError> {
        let magic = u32::from_le_bytes(payload[0..4].try_into().unwrap());
        let version = u32::from_le_bytes(payload[4..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(RequestError::Malformed(format!(
                "{what}: bad magic {magic:#x} (not a pa-net serve client?)"
            )));
        }
        if version != SERVE_VERSION {
            return Err(RequestError::Version(format!(
                "{what}: peer speaks serve protocol v{version}, this build v{SERVE_VERSION}"
            )));
        }
        Ok(())
    };
    match kind {
        KIND_SUBMIT => {
            if payload.len() != SUBMIT_LEN {
                return Err(RequestError::Malformed(format!(
                    "SUBMIT payload must be {SUBMIT_LEN} bytes, got {}",
                    payload.len()
                )));
            }
            check_preamble("SUBMIT")?;
            let spec =
                JobSpec::from_canonical(payload[8..8 + JOB_CANONICAL_LEN].try_into().unwrap());
            let offset = u64::from_le_bytes(payload[8 + JOB_CANONICAL_LEN..].try_into().unwrap());
            Ok(ServeMsg::Submit { spec, offset })
        }
        KIND_DRAIN_REQ => {
            if payload.len() != 8 {
                return Err(RequestError::Malformed(format!(
                    "DRAIN_REQ payload must be 8 bytes, got {}",
                    payload.len()
                )));
            }
            check_preamble("DRAIN_REQ")?;
            Ok(ServeMsg::DrainReq)
        }
        other => Err(RequestError::Malformed(format!(
            "unknown request kind {other:#04x}"
        ))),
    }
}

/// Read one server→client reply frame.
///
/// # Errors
///
/// `InvalidData` on unknown kinds, wrong payload lengths, unknown
/// reject codes, or non-UTF-8 reject messages; I/O errors pass through.
pub fn read_reply(r: &mut impl Read) -> io::Result<ServeMsg> {
    let mut payload = Vec::new();
    let kind = read_raw_frame(r, &mut payload, MAX_FRAME)?;
    parse_reply(kind, &payload).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
}

/// Parse a server→client reply from its raw kind byte and payload.
fn parse_reply(kind: u8, payload: &[u8]) -> Result<ServeMsg, String> {
    let want = |n: usize, what: &str| -> Result<(), String> {
        if payload.len() != n {
            return Err(format!(
                "{what} payload must be {n} bytes, got {}",
                payload.len()
            ));
        }
        Ok(())
    };
    let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().unwrap());
    match kind {
        KIND_ACCEPT => {
            want(24, "ACCEPT")?;
            Ok(ServeMsg::Accept {
                job_id: u64_at(0),
                offset: u64_at(8),
                total: u64_at(16),
            })
        }
        KIND_REJECT => {
            if payload.len() < 5 {
                return Err(format!("REJECT payload of {} bytes", payload.len()));
            }
            let code = RejectCode::from_byte(payload[0])
                .ok_or_else(|| format!("unknown reject code {}", payload[0]))?;
            let retry_ms = u32::from_le_bytes(payload[1..5].try_into().unwrap());
            let msg = std::str::from_utf8(&payload[5..])
                .map_err(|_| "REJECT message is not UTF-8".to_string())?
                .to_string();
            Ok(ServeMsg::Reject {
                code,
                retry_after: Duration::from_millis(u64::from(retry_ms)),
                msg,
            })
        }
        KIND_CHUNK => {
            if payload.len() < 8 {
                return Err(format!("CHUNK payload of {} bytes", payload.len()));
            }
            Ok(ServeMsg::Chunk {
                offset: u64_at(0),
                data: payload[8..].to_vec(),
            })
        }
        KIND_DONE => {
            want(16, "DONE")?;
            Ok(ServeMsg::Done {
                total: u64_at(0),
                checksum: u64_at(8),
            })
        }
        KIND_DRAIN_ACK => {
            want(8, "DRAIN_ACK")?;
            Ok(ServeMsg::DrainAck {
                running: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
                dropped: u32::from_le_bytes(payload[4..8].try_into().unwrap()),
            })
        }
        other => Err(format!("unknown reply kind {other:#04x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            n: 10_000,
            x: 4,
            p_bits: 0.5f64.to_bits(),
            seed: 7,
            alpha_bits: 0,
            ranks: 4,
            scheme_id: 2,
            engine_id: 2,
            model_id: 0,
            format_id: 1,
        }
    }

    #[test]
    fn canonical_bytes_round_trip_and_pin_the_layout() {
        let s = spec();
        let bytes = s.canonical_bytes();
        assert_eq!(JobSpec::from_canonical(&bytes), s);
        // Pinned layout: wire identity; renumbering is a version bump.
        assert_eq!(&bytes[0..8], &10_000u64.to_le_bytes());
        assert_eq!(&bytes[40..44], &4u32.to_le_bytes());
        assert_eq!(&bytes[44..48], &[2, 2, 0, 1]);
    }

    #[test]
    fn submit_round_trips() {
        let mut wire = Vec::new();
        write_submit(&mut wire, &spec(), 4096).unwrap();
        assert_eq!(wire.len(), 4 + 1 + SUBMIT_LEN);
        let mut payload = Vec::new();
        let kind = read_raw_frame(&mut &wire[..], &mut payload, MAX_REQUEST_FRAME).unwrap();
        assert_eq!(kind, KIND_SUBMIT);
        let msg = parse_request(kind, &payload).unwrap();
        assert_eq!(
            msg,
            ServeMsg::Submit {
                spec: spec(),
                offset: 4096
            }
        );
    }

    #[test]
    fn submit_rejects_bad_magic_version_and_length() {
        let mut wire = Vec::new();
        write_submit(&mut wire, &spec(), 0).unwrap();
        let payload = &wire[5..];

        let mut bad_magic = payload.to_vec();
        bad_magic[0] ^= 0xff;
        let err = parse_request(KIND_SUBMIT, &bad_magic).unwrap_err();
        assert!(
            matches!(&err, RequestError::Malformed(m) if m.contains("magic")),
            "{err:?}"
        );

        let mut bad_version = payload.to_vec();
        bad_version[4] = 99;
        let err = parse_request(KIND_SUBMIT, &bad_version).unwrap_err();
        assert!(
            matches!(&err, RequestError::Version(m) if m.contains("v99")),
            "{err:?}"
        );

        let err = parse_request(KIND_SUBMIT, &payload[..10]).unwrap_err();
        assert!(
            matches!(&err, RequestError::Malformed(m) if m.contains("64 bytes")),
            "{err:?}"
        );

        let err = parse_request(0x7f, payload).unwrap_err();
        assert!(
            matches!(&err, RequestError::Malformed(m) if m.contains("unknown request")),
            "{err:?}"
        );
    }

    #[test]
    fn replies_round_trip() {
        let cases: Vec<(Vec<u8>, ServeMsg)> = {
            let mut v = Vec::new();
            let mut w = Vec::new();
            write_accept(&mut w, 0xdead, 16, 2048).unwrap();
            v.push((
                w.clone(),
                ServeMsg::Accept {
                    job_id: 0xdead,
                    offset: 16,
                    total: 2048,
                },
            ));
            w.clear();
            write_reject(
                &mut w,
                RejectCode::QueueFull,
                Duration::from_millis(250),
                "full",
            )
            .unwrap();
            v.push((
                w.clone(),
                ServeMsg::Reject {
                    code: RejectCode::QueueFull,
                    retry_after: Duration::from_millis(250),
                    msg: "full".into(),
                },
            ));
            w.clear();
            write_chunk(&mut w, 64, b"edges").unwrap();
            v.push((
                w.clone(),
                ServeMsg::Chunk {
                    offset: 64,
                    data: b"edges".to_vec(),
                },
            ));
            w.clear();
            write_done(&mut w, 2048, 0xbeef).unwrap();
            v.push((
                w.clone(),
                ServeMsg::Done {
                    total: 2048,
                    checksum: 0xbeef,
                },
            ));
            w.clear();
            write_drain_ack(&mut w, 2, 5).unwrap();
            v.push((
                w.clone(),
                ServeMsg::DrainAck {
                    running: 2,
                    dropped: 5,
                },
            ));
            v
        };
        for (wire, expect) in cases {
            let got = read_reply(&mut &wire[..]).unwrap();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn drain_req_round_trips_and_checks_preamble() {
        let mut wire = Vec::new();
        write_drain_req(&mut wire).unwrap();
        let mut payload = Vec::new();
        let kind = read_raw_frame(&mut &wire[..], &mut payload, MAX_REQUEST_FRAME).unwrap();
        assert_eq!(kind, KIND_DRAIN_REQ);
        assert_eq!(parse_request(kind, &payload).unwrap(), ServeMsg::DrainReq);

        let err = parse_request(KIND_DRAIN_REQ, &payload[..4]).unwrap_err();
        assert!(matches!(err, RequestError::Malformed(_)));
    }

    #[test]
    fn reject_codes_round_trip_and_classify_retryability() {
        for code in [
            RejectCode::BadRequest,
            RejectCode::QueueFull,
            RejectCode::Draining,
            RejectCode::UnsupportedVersion,
            RejectCode::BadOffset,
            RejectCode::JobFailed,
        ] {
            assert_eq!(RejectCode::from_byte(code as u8), Some(code));
            assert_eq!(code.is_retryable(), code == RejectCode::QueueFull, "{code}");
        }
        assert_eq!(RejectCode::from_byte(0), None);
        assert_eq!(RejectCode::from_byte(7), None);
    }

    #[test]
    fn job_id_differs_per_field_and_matches_manual_fnv() {
        let s = spec();
        assert_eq!(s.job_id(), Fnv1a::hash(&s.canonical_bytes()));
        let mut other = s;
        other.ranks = 8;
        assert_ne!(other.job_id(), s.job_id());
    }

    #[test]
    fn serve_kinds_are_disjoint_from_transport_kinds() {
        for kind in [
            KIND_SUBMIT,
            KIND_ACCEPT,
            KIND_REJECT,
            KIND_CHUNK,
            KIND_DONE,
            KIND_DRAIN_REQ,
            KIND_DRAIN_ACK,
        ] {
            assert!(
                crate::frame::Kind::from_byte(kind).is_none(),
                "serve kind {kind:#04x} collides with a transport kind"
            );
        }
    }
}
