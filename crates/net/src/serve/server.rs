//! The serve daemon: bounded queue, supervised worker pool, artifact
//! cache with crash recovery, per-connection streaming.
//!
//! # Lifecycle of a job
//!
//! ```text
//! SUBMIT ──validate──► Queued ──worker──► Running ──► Done{total, checksum}
//!            │            │                  │
//!            ▼            ▼ (drain)          ▼ (error / panic / deadline)
//!         REJECT       Failed{draining}   Failed{job-failed | job-timeout}
//! ```
//!
//! A job runs **at most once per artifact**: concurrent submits of the
//! same tuple coalesce onto one queue entry and all stream the same
//! artifact when it completes; a failed run is *not* cached — its
//! waiters get a named [`RejectCode`] and the next submit retries,
//! until the per-tuple failure budget ([`ServeConfig::max_job_failures`])
//! is spent.
//!
//! # Self-healing discipline
//!
//! The daemon promises "named error, never a hang", the same contract
//! the rank-to-rank transport keeps:
//!
//! - **Supervision.** Jobs run under `catch_unwind`: a panicking
//!   runner becomes `Failed{job-failed}` with the panic message, its
//!   waiters are released, and the worker thread survives.
//! - **Deadlines.** With [`ServeConfig::job_timeout`] set, a monitor
//!   thread abandons overdue runs as `Failed{job-timeout}` and spawns a
//!   replacement worker, so one wedged runner cannot shrink the pool.
//!   The abandoned worker retires itself if it ever wakes; its run is
//!   discarded (each run attempt owns a unique temp path and the
//!   publish rename happens under the lock only while the run is still
//!   current, so a late finisher can never clobber the cache).
//! - **Recovery.** On startup the jobs directory is scanned: stale
//!   `*.tmp` litter is deleted and every `*.art` artifact is
//!   re-checksummed and republished, so a SIGKILLed daemon restarted
//!   on the same directory serves its pre-crash cache instead of
//!   re-running (engines 1/2 are not byte-deterministic across runs —
//!   a re-run would break every resuming client's whole-artifact
//!   checksum).
//! - **Admission control.** Connections beyond
//!   [`ServeConfig::max_conns`] get a retryable
//!   [`RejectCode::Overloaded`] instead of an unbounded thread; the
//!   artifact cache is held under [`ServeConfig::cache_bytes`] by
//!   least-recently-used eviction (streams pin their artifact).
//!
//! The artifact is written to a per-run temp path and renamed into the
//! cache only after the whole run and its checksum pass, so a crashed
//! or failed run can never leave a half-written file that a resume
//! would then trust.
//!
//! # Why streaming is resume-trivial
//!
//! Connections only ever stream *completed* artifacts (a submit for an
//! in-flight job waits for completion first). Resuming from byte
//! `offset` is therefore a plain `seek` — no generator state is ever
//! part of the resume contract, which is what keeps the token down to
//! `(tuple, offset)`.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use super::proto::{
    parse_request, write_accept, write_chunk, write_done, write_drain_ack, write_reject,
    write_status_ack, JobSpec, RejectCode, RequestError, ServeMsg, ServeStats, ServeStatus,
    MAX_REQUEST_FRAME,
};
use crate::frame::read_raw_frame;
use pa_graph::io::{stream_file_from, Fnv1a};

/// Executes admitted jobs. The serve layer owns scheduling, caching and
/// streaming; the runner owns *meaning* — `pa-cli` wires this to the
/// generation engines, tests plug in synthetic runners.
pub trait JobRunner: Send + Sync + 'static {
    /// Decide whether `spec` names a runnable job, with a named error
    /// for the [`RejectCode::BadRequest`] rejection if not. Runs on the
    /// connection thread — keep it cheap.
    fn validate(&self, spec: &JobSpec) -> Result<(), String>;

    /// Produce the complete artifact for `spec` at `out` (the server
    /// renames it into the cache afterwards). Runs under `catch_unwind`:
    /// a panic here is reported to waiters as a job failure, not a dead
    /// worker. Resumes always continue the cached artifact, which is
    /// immutable once published, so the runner need not be
    /// byte-reproducible across runs — but if a re-run (after a cache
    /// eviction, say) produces different bytes, clients resuming an old
    /// prefix fail the whole-artifact checksum with a named error
    /// instead of silently stitching a hybrid.
    fn run(&self, spec: &JobSpec, out: &Path) -> Result<(), String>;
}

/// Daemon tuning. Every field is public; [`ServeConfig::new`] provides
/// defaults sized for tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory for artifacts (created if missing). One file per
    /// completed job, named by job id. Scanned on startup to recover
    /// the cache of a previous (possibly crashed) daemon.
    pub jobs_dir: PathBuf,
    /// Queue bound, counting *queued* jobs only (running jobs have
    /// already left the queue). Full queue → `QueueFull` rejection.
    pub queue_cap: usize,
    /// Worker threads executing jobs. The pool holds this size through
    /// panics and deadline abandonments.
    pub workers: usize,
    /// Streaming chunk size in bytes.
    pub chunk_bytes: usize,
    /// The `retry_after` hint sent with retryable rejections.
    pub retry_after: Duration,
    /// Per-socket read/write timeout. Bounds half-open connections: a
    /// client that connects and never submits is dropped after this
    /// long, it cannot pin a connection slot forever.
    pub request_timeout: Duration,
    /// Per-job run deadline. `None` disables the monitor; with a
    /// deadline set, an overdue run is abandoned with a retryable
    /// [`RejectCode::JobTimeout`] and its worker is replaced.
    pub job_timeout: Option<Duration>,
    /// Connection cap. Accepts beyond it are turned away with a
    /// retryable [`RejectCode::Overloaded`] instead of spawning an
    /// unbounded thread per connection.
    pub max_conns: usize,
    /// Artifact-cache byte quota. When completed artifacts exceed it,
    /// the least-recently-streamed reader-free ones are evicted (and
    /// re-run on their next submit). `u64::MAX` means unlimited.
    pub cache_bytes: u64,
    /// Per-tuple failure budget: after this many failed run attempts
    /// (errors, panics or timeouts), further submits of the tuple are
    /// rejected without running until the daemon restarts. `0` means
    /// unlimited retries.
    pub max_job_failures: u32,
}

impl ServeConfig {
    /// Defaults: queue of 16, 2 workers, 256 KiB chunks, 200 ms retry
    /// hint, 10 s socket timeout, no job deadline, 64 connections,
    /// unlimited cache bytes, per-tuple failure budget of 3.
    pub fn new(jobs_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            jobs_dir: jobs_dir.into(),
            queue_cap: 16,
            workers: 2,
            chunk_bytes: 256 << 10,
            retry_after: Duration::from_millis(200),
            request_timeout: Duration::from_secs(10),
            job_timeout: None,
            max_conns: 64,
            cache_bytes: u64::MAX,
            max_job_failures: 3,
        }
    }
}

enum Phase {
    Queued,
    Running {
        /// Run token: unique per run *attempt*. A run publishes or
        /// fails only while its token is still current; the monitor
        /// invalidates the token when it abandons an overdue run.
        run: u64,
        started: Instant,
    },
    Done {
        total: u64,
        checksum: u64,
        /// Logical LRU clock value of the last stream (eviction order).
        touch: u64,
        /// Streams in flight; a pinned artifact is never evicted.
        readers: u32,
    },
    Failed {
        msg: String,
        code: RejectCode,
    },
}

struct JobState {
    /// `None` for artifacts rebuilt by the recovery scan (the original
    /// tuple is not stored on disk; identity is the job-id filename).
    /// Always `Some` while an entry is queued.
    spec: Option<JobSpec>,
    phase: Phase,
}

struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobState>,
    draining: bool,
    shutdown: bool,
    running: usize,
    active_conns: usize,
    /// Run-token source (see [`Phase::Running`]).
    next_run: u64,
    /// Logical LRU clock (see [`Phase::Done`]).
    touch_clock: u64,
    /// Total bytes of completed artifacts in the cache.
    cache_bytes: u64,
    /// Worker threads alive, including wedged ones.
    workers_live: usize,
    /// Workers abandoned past a deadline, replaced, not yet retired.
    workers_wedged: usize,
    /// Failed run attempts per job id (cleared on success), charged
    /// against [`ServeConfig::max_job_failures`].
    failures: HashMap<u64, u32>,
    stats: ServeStats,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.touch_clock += 1;
        self.touch_clock
    }
}

struct Shared {
    cfg: ServeConfig,
    runner: Arc<dyn JobRunner>,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Shared {
    /// Lock the state, recovering from poison: a panic on some other
    /// thread (already counted by supervision) must not cascade into
    /// every lock site.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        self.cond
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_timeout<'a>(
        &self,
        guard: MutexGuard<'a, Inner>,
        dur: Duration,
    ) -> MutexGuard<'a, Inner> {
        self.cond
            .wait_timeout(guard, dur)
            .unwrap_or_else(PoisonError::into_inner)
            .0
    }

    fn artifact_path(&self, id: u64) -> PathBuf {
        self.cfg.jobs_dir.join(format!("{id:016x}.art"))
    }

    /// Temp path of one run *attempt*. Unique per attempt so an
    /// abandoned run and its retry can never write the same file.
    fn tmp_path(&self, id: u64, run: u64) -> PathBuf {
        self.cfg.jobs_dir.join(format!("{id:016x}.{run}.tmp"))
    }

    /// Enter drain: stop admitting, fail everything queued, wake every
    /// waiter and worker. Idempotent. Returns `(running, dropped)` for
    /// the `DRAIN_ACK`.
    fn drain_now(&self) -> (u32, u32) {
        let mut inner = self.lock();
        inner.draining = true;
        let mut dropped = 0u32;
        while let Some(id) = inner.queue.pop_front() {
            if let Some(job) = inner.jobs.get_mut(&id) {
                job.phase = Phase::Failed {
                    msg: "job drained before start".into(),
                    code: RejectCode::Draining,
                };
            }
            dropped += 1;
        }
        inner.stats.jobs_drained += u64::from(dropped);
        self.cond.notify_all();
        (inner.running as u32, dropped)
    }

    /// Snapshot the daemon's health for `STATUS_ACK` / [`Server::status`].
    fn status_now(&self) -> ServeStatus {
        let inner = self.lock();
        let cache_artifacts = inner
            .jobs
            .values()
            .filter(|j| matches!(j.phase, Phase::Done { .. }))
            .count();
        ServeStatus {
            queued: inner.queue.len() as u32,
            running: inner.running as u32,
            active_conns: inner.active_conns as u32,
            workers: inner.workers_live.saturating_sub(inner.workers_wedged) as u32,
            workers_wedged: inner.workers_wedged as u32,
            cache_artifacts: cache_artifacts as u32,
            draining: inner.draining,
            cache_bytes: inner.cache_bytes,
            stats: inner.stats,
        }
    }
}

/// A running serve daemon. Dropping the handle does *not* stop it; the
/// clean shutdown sequence is [`Server::drain`] (or a `DRAIN_REQ` over
/// the wire) followed by [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and start the daemon.
    ///
    /// # Errors
    ///
    /// Bind failures and a jobs-directory that cannot be created.
    pub fn bind(addr: &str, cfg: ServeConfig, runner: impl JobRunner) -> io::Result<Server> {
        Server::start(TcpListener::bind(addr)?, cfg, runner)
    }

    /// Start the daemon on an already-bound listener (lets tests bind
    /// port 0 themselves). Runs the crash-recovery scan over the jobs
    /// directory before accepting connections.
    ///
    /// # Errors
    ///
    /// A jobs-directory that cannot be created, or a listener that
    /// cannot report its local address / switch to non-blocking mode.
    pub fn start(
        listener: TcpListener,
        cfg: ServeConfig,
        runner: impl JobRunner,
    ) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.jobs_dir)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            runner: Arc::new(runner),
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                draining: false,
                shutdown: false,
                running: 0,
                active_conns: 0,
                next_run: 0,
                touch_clock: 0,
                cache_bytes: 0,
                workers_live: 0,
                workers_wedged: 0,
                failures: HashMap::new(),
                stats: ServeStats::default(),
            }),
            cond: Condvar::new(),
        });
        {
            let mut inner = shared.lock();
            recover_cache(&shared, &mut inner);
            evict_over_quota(&mut inner, &shared);
        }
        for _ in 0..workers {
            spawn_worker(&shared).expect("spawn worker");
        }
        let monitor = if shared.cfg.job_timeout.is_some() {
            let sh = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("serve-monitor".into())
                    .spawn(move || monitor_loop(&sh))
                    .expect("spawn monitor"),
            )
        } else {
            None
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            monitor,
        })
    }

    /// The daemon's listen address (with the OS-assigned port when
    /// bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic drain — same semantics as a `DRAIN_REQ` over the
    /// wire. Returns `(running, dropped)`.
    pub fn drain(&self) -> (u32, u32) {
        self.shared.drain_now()
    }

    /// Snapshot of the daemon's counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.lock().stats
    }

    /// Snapshot of the daemon's health — same data a wire `STATUS_REQ`
    /// returns (minus the requesting connection in `active_conns`).
    pub fn status(&self) -> ServeStatus {
        self.shared.status_now()
    }

    /// Wait for the daemon to finish. **Blocks until a drain arrives**
    /// (via [`Server::drain`] or the wire) and every in-flight job has
    /// finished streaming — this is the daemon's main "run until told
    /// to stop" call. Wedged workers are unjoinable by definition;
    /// `join` waits for every *other* worker to retire and leaves the
    /// wedged ones to exit with the process (or retire on their own if
    /// their runner ever returns).
    pub fn join(mut self) -> ServeStats {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.lock().shutdown = true;
        self.shared.cond.notify_all();
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        let mut inner = self.shared.lock();
        while inner.workers_live > inner.workers_wedged {
            inner = self.shared.wait(inner);
        }
        inner.stats
    }
}

/// Add one worker to the pool (initial spawn and deadline
/// replacements). The liveness counter is incremented *before* the
/// spawn and rolled back on failure, so [`Server::join`] can always
/// wait on it.
///
/// # Errors
///
/// Propagates the thread-spawn error (the pool is left as it was).
fn spawn_worker(shared: &Arc<Shared>) -> io::Result<()> {
    shared.lock().workers_live += 1;
    let sh = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("serve-worker".into())
        .spawn(move || {
            loop {
                if catch_unwind(AssertUnwindSafe(|| worker_loop(&sh))).is_ok() {
                    break;
                }
                // Runner panics are caught *inside* worker_loop; landing
                // here means the serve layer itself panicked. Count it
                // and restart the loop so the pool never shrinks.
                sh.lock().stats.worker_panics += 1;
            }
        });
    if let Err(e) = spawned {
        let mut inner = shared.lock();
        inner.workers_live -= 1;
        drop(inner);
        shared.cond.notify_all();
        return Err(e);
    }
    Ok(())
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (id, spec, run) = {
            let mut inner = shared.lock();
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    inner.next_run += 1;
                    let run = inner.next_run;
                    let job = inner.jobs.get_mut(&id).expect("queued job has state");
                    job.phase = Phase::Running {
                        run,
                        started: Instant::now(),
                    };
                    let spec = job.spec.expect("queued job carries its spec");
                    inner.running += 1;
                    break (id, spec, run);
                }
                if inner.draining {
                    inner.workers_live -= 1;
                    drop(inner);
                    shared.cond.notify_all();
                    return;
                }
                inner = shared.wait(inner);
            }
        };
        let tmp = shared.tmp_path(id, run);
        // Supervision: a panicking runner is a job failure, not a dead
        // worker plus forever-blocked waiters.
        let outcome = match catch_unwind(AssertUnwindSafe(|| run_job(shared, &spec, &tmp))) {
            Ok(result) => result.map_err(|msg| (msg, false)),
            Err(payload) => Err((
                format!("job runner panicked: {}", panic_message(payload.as_ref())),
                true,
            )),
        };
        let mut inner = shared.lock();
        let current = matches!(
            inner.jobs.get(&id).map(|j| &j.phase),
            Some(Phase::Running { run: r, .. }) if *r == run
        );
        if !current {
            // The monitor abandoned this run at its deadline: waiters
            // were already released and a replacement worker spawned,
            // making this thread the surplus. Discard the result and
            // retire so the pool returns to its configured size.
            inner.workers_wedged = inner.workers_wedged.saturating_sub(1);
            inner.workers_live -= 1;
            drop(inner);
            let _ = std::fs::remove_file(&tmp);
            shared.cond.notify_all();
            return;
        }
        inner.running -= 1;
        let mut cleanup_tmp = false;
        match outcome {
            Ok((total, checksum)) => {
                // Publish under the lock, while the run token is still
                // current — an abandoned run can therefore never rename
                // over a published artifact later.
                match std::fs::rename(&tmp, shared.artifact_path(id)) {
                    Ok(()) => {
                        inner.stats.jobs_run += 1;
                        inner.failures.remove(&id);
                        let touch = inner.touch();
                        if let Some(job) = inner.jobs.get_mut(&id) {
                            job.phase = Phase::Done {
                                total,
                                checksum,
                                touch,
                                readers: 0,
                            };
                        }
                        inner.cache_bytes += total;
                        evict_over_quota(&mut inner, shared);
                    }
                    Err(e) => {
                        fail(
                            &mut inner,
                            id,
                            format!("publishing artifact: {e}"),
                            RejectCode::JobFailed,
                        );
                        cleanup_tmp = true;
                    }
                }
            }
            Err((msg, was_panic)) => {
                if was_panic {
                    inner.stats.worker_panics += 1;
                }
                fail(&mut inner, id, msg, RejectCode::JobFailed);
                cleanup_tmp = true;
            }
        }
        drop(inner);
        if cleanup_tmp {
            let _ = std::fs::remove_file(&tmp);
        }
        shared.cond.notify_all();
    }
}

/// Render a `catch_unwind` payload for the failure message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Mark the current run of `id` failed: count it, charge the tuple's
/// failure budget, hand waiters the named `code`.
fn fail(inner: &mut Inner, id: u64, msg: String, code: RejectCode) {
    inner.stats.jobs_failed += 1;
    if code == RejectCode::JobTimeout {
        inner.stats.jobs_timed_out += 1;
    }
    *inner.failures.entry(id).or_insert(0) += 1;
    if let Some(job) = inner.jobs.get_mut(&id) {
        job.phase = Phase::Failed { msg, code };
    }
}

/// Evict least-recently-streamed reader-free artifacts until the cache
/// fits [`ServeConfig::cache_bytes`]. Artifacts pinned by an active
/// stream are skipped — the quota is transiently exceeded rather than
/// yanking a file out from under a reader.
fn evict_over_quota(inner: &mut Inner, shared: &Shared) {
    while inner.cache_bytes > shared.cfg.cache_bytes {
        let victim = inner
            .jobs
            .iter()
            .filter_map(|(id, job)| match &job.phase {
                Phase::Done {
                    touch,
                    readers: 0,
                    total,
                    ..
                } => Some((*touch, *id, *total)),
                _ => None,
            })
            .min_by_key(|&(touch, _, _)| touch);
        let Some((_, id, total)) = victim else { break };
        let _ = std::fs::remove_file(shared.artifact_path(id));
        inner.jobs.remove(&id);
        inner.cache_bytes = inner.cache_bytes.saturating_sub(total);
        inner.stats.jobs_evicted += 1;
    }
}

/// Rebuild the artifact cache from the jobs directory after a restart:
/// delete stale `*.tmp` litter, re-checksum every `*.art` file and
/// republish it as `Done`, so resuming clients stitch against the
/// exact pre-crash bytes. Unreadable or oddly-named files are left in
/// place and simply not served.
fn recover_cache(shared: &Shared, inner: &mut Inner) {
    let Ok(entries) = std::fs::read_dir(&shared.cfg.jobs_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let path = entry.path();
        if name.ends_with(".tmp") {
            if std::fs::remove_file(&path).is_ok() {
                inner.stats.tmp_cleaned += 1;
            }
            continue;
        }
        let Some(hex) = name.strip_suffix(".art") else {
            continue;
        };
        if hex.len() != 16 {
            continue;
        }
        let Ok(id) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        let mut hasher = Fnv1a::new();
        let scanned = stream_file_from(&path, 0, 1 << 20, |_, data| {
            hasher.update(data);
            Ok(())
        });
        let Ok(total) = scanned else { continue };
        let touch = inner.touch();
        inner.jobs.insert(
            id,
            JobState {
                spec: None,
                phase: Phase::Done {
                    total,
                    checksum: hasher.digest(),
                    touch,
                    readers: 0,
                },
            },
        );
        inner.cache_bytes += total;
        inner.stats.jobs_recovered += 1;
    }
}

/// Execute one job attempt: run the runner to the attempt's temp path,
/// then checksum the result. Returns `(total_bytes, checksum)`; the
/// caller publishes (renames) under the lock.
fn run_job(shared: &Shared, spec: &JobSpec, tmp: &Path) -> Result<(u64, u64), String> {
    let result = shared.runner.run(spec, tmp).and_then(|()| {
        let mut hasher = Fnv1a::new();
        let total = stream_file_from(tmp, 0, 1 << 20, |_, data| {
            hasher.update(data);
            Ok(())
        })
        .map_err(|e| format!("checksum pass over fresh artifact failed: {e}"))?;
        Ok((total, hasher.digest()))
    });
    if result.is_err() {
        let _ = std::fs::remove_file(tmp);
    }
    result
}

/// Enforce [`ServeConfig::job_timeout`]: abandon overdue runs with a
/// retryable `JobTimeout` rejection and keep the pool at size by
/// spawning one replacement per abandoned worker.
fn monitor_loop(shared: &Arc<Shared>) {
    let Some(deadline) = shared.cfg.job_timeout else {
        return;
    };
    let tick = (deadline / 4).clamp(Duration::from_millis(10), Duration::from_millis(500));
    let mut inner = shared.lock();
    loop {
        if inner.shutdown {
            return;
        }
        let now = Instant::now();
        let overdue: Vec<u64> = inner
            .jobs
            .iter()
            .filter_map(|(id, job)| match &job.phase {
                Phase::Running { started, .. } if now.duration_since(*started) >= deadline => {
                    Some(*id)
                }
                _ => None,
            })
            .collect();
        let replacements = overdue.len();
        for id in overdue {
            fail(
                &mut inner,
                id,
                format!(
                    "job ran past its {} ms deadline and was abandoned",
                    deadline.as_millis()
                ),
                RejectCode::JobTimeout,
            );
            // The run token under `Failed` is gone: the wedged worker
            // will see itself stale and retire. Account it out of the
            // running set now so drains and joins don't wait on it.
            inner.running -= 1;
            inner.workers_wedged += 1;
        }
        if replacements > 0 {
            drop(inner);
            shared.cond.notify_all();
            for _ in 0..replacements {
                let _ = spawn_worker(shared);
            }
            inner = shared.lock();
        }
        inner = shared.wait_timeout(inner, tick);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        {
            let inner = shared.lock();
            if inner.draining
                && inner.queue.is_empty()
                && inner.running == 0
                && inner.active_conns == 0
            {
                return;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let admitted = {
                    let mut inner = shared.lock();
                    if inner.active_conns >= shared.cfg.max_conns.max(1) {
                        false
                    } else {
                        inner.active_conns += 1;
                        true
                    }
                };
                if !admitted {
                    reject_overloaded(shared, stream);
                    continue;
                }
                let sh = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        handle_conn(&sh, stream);
                        let mut inner = sh.lock();
                        inner.active_conns -= 1;
                        drop(inner);
                        sh.cond.notify_all();
                    });
                if spawned.is_err() {
                    // The closure never ran (the stream dropped with
                    // it): undo the admission here, or `join` would
                    // wait forever on a count that can't reach zero.
                    let mut inner = shared.lock();
                    inner.active_conns -= 1;
                    drop(inner);
                    shared.cond.notify_all();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Turn away a connection beyond the cap, inline on the accept thread:
/// short write timeout, named retryable reject, brief linger (cf.
/// [`linger_close`], but bounded tighter so a hostile client cannot
/// pin the accept loop).
fn reject_overloaded(shared: &Shared, mut stream: TcpStream) {
    use std::io::Read;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let msg = format!("connection limit reached ({})", shared.cfg.max_conns);
    let _ = write_reject(
        &mut stream,
        RejectCode::Overloaded,
        shared.cfg.retry_after,
        &msg,
    );
    shared.lock().stats.note_reject(RejectCode::Overloaded);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 1024];
    for _ in 0..4 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Send a rejection (best effort — the peer may already be gone) and
/// count it under its code.
fn reject(shared: &Shared, stream: &mut TcpStream, code: RejectCode, msg: &str) {
    let retry_after = if code.is_retryable() {
        shared.cfg.retry_after
    } else {
        Duration::ZERO
    };
    let _ = write_reject(stream, code, retry_after, msg);
    shared.lock().stats.note_reject(code);
}

/// Close without slamming the door: half-close the write side, then
/// drain (bounded) whatever the peer already sent. Closing with unread
/// bytes in the receive queue makes the kernel send RST, which races
/// ahead of the final reply frame and can destroy it before the client
/// reads it — a rejected client would then see "connection reset"
/// instead of the named error it was sent.
fn linger_close(mut stream: TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf = [0u8; 4096];
    for _ in 0..64 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.request_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.request_timeout));
    let _ = stream.set_nodelay(true);
    serve_conn(shared, &mut stream);
    linger_close(stream);
}

fn serve_conn(shared: &Shared, stream: &mut TcpStream) {
    let mut payload = Vec::new();
    let kind = match read_raw_frame(stream, &mut payload, MAX_REQUEST_FRAME) {
        Ok(kind) => kind,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // A framing violation (oversized or zero length) still gets a
            // named answer — the bytes after it are unparseable, so the
            // connection closes right after.
            reject(shared, stream, RejectCode::BadRequest, &e.to_string());
            return;
        }
        // EOF, timeout (half-open connection), or reset: nothing to say.
        Err(_) => return,
    };
    match parse_request(kind, &payload) {
        Ok(ServeMsg::Submit { spec, offset }) => handle_submit(shared, stream, spec, offset),
        Ok(ServeMsg::DrainReq) => {
            let (running, dropped) = shared.drain_now();
            let _ = write_drain_ack(stream, running, dropped);
        }
        Ok(ServeMsg::StatusReq) => {
            let status = shared.status_now();
            let _ = write_status_ack(stream, &status);
        }
        Ok(_) => reject(
            shared,
            stream,
            RejectCode::BadRequest,
            "reply kind sent as a request",
        ),
        Err(RequestError::Version(msg)) => {
            reject(shared, stream, RejectCode::UnsupportedVersion, &msg);
        }
        Err(RequestError::Malformed(msg)) => {
            reject(shared, stream, RejectCode::BadRequest, &msg);
        }
    }
}

fn handle_submit(shared: &Shared, stream: &mut TcpStream, spec: JobSpec, offset: u64) {
    if let Err(msg) = shared.runner.validate(&spec) {
        reject(shared, stream, RejectCode::BadRequest, &msg);
        return;
    }
    let id = spec.job_id();
    enum Seen {
        Absent,
        Wait,
        Done,
        Failed(RejectCode, String),
    }
    // Admission: find or create the job entry, then wait out Queued and
    // Running under the condvar. FIFO is the queue's order; admission
    // order is the lock-acquisition order of this critical section.
    let outcome = {
        let mut inner = shared.lock();
        let mut coalesced_counted = false;
        loop {
            let seen = match inner.jobs.get(&id).map(|j| &j.phase) {
                None => Seen::Absent,
                Some(Phase::Queued | Phase::Running { .. }) => Seen::Wait,
                Some(Phase::Done { .. }) => Seen::Done,
                Some(Phase::Failed { msg, code }) => Seen::Failed(*code, msg.clone()),
            };
            match seen {
                Seen::Absent => {
                    // Admission decisions (drain, budget, capacity)
                    // apply only to *new* work: a waiter on an in-flight
                    // job keeps waiting through a drain and still gets
                    // its stream.
                    if inner.draining {
                        break Err((RejectCode::Draining, "server is draining".to_string()));
                    }
                    let budget = shared.cfg.max_job_failures;
                    let spent = inner.failures.get(&id).copied().unwrap_or(0);
                    if budget > 0 && spent >= budget {
                        break Err((
                            RejectCode::JobFailed,
                            format!(
                                "job failed {spent} time(s); per-tuple failure budget \
                                 ({budget}) exhausted until the daemon restarts"
                            ),
                        ));
                    }
                    if inner.queue.len() >= shared.cfg.queue_cap {
                        break Err((
                            RejectCode::QueueFull,
                            format!("job queue at capacity ({})", shared.cfg.queue_cap),
                        ));
                    }
                    inner.jobs.insert(
                        id,
                        JobState {
                            spec: Some(spec),
                            phase: Phase::Queued,
                        },
                    );
                    inner.queue.push_back(id);
                    inner.stats.jobs_admitted += 1;
                    // The admitter now waits like everyone else, but it
                    // is the one submit that is *not* a coalesce.
                    coalesced_counted = true;
                    shared.cond.notify_all();
                }
                Seen::Wait => {
                    if !coalesced_counted {
                        inner.stats.jobs_coalesced += 1;
                        coalesced_counted = true;
                    }
                    inner = shared.wait(inner);
                }
                Seen::Done => {
                    if !coalesced_counted {
                        inner.stats.jobs_coalesced += 1;
                    }
                    // Register as a reader: a streaming artifact is
                    // pinned against eviction until the stream ends.
                    let touch = inner.touch();
                    let Some(JobState {
                        phase:
                            Phase::Done {
                                total,
                                checksum,
                                touch: last,
                                readers,
                            },
                        ..
                    }) = inner.jobs.get_mut(&id)
                    else {
                        unreachable!("Done entry vanished under the lock");
                    };
                    *last = touch;
                    *readers += 1;
                    break Ok((*total, *checksum));
                }
                Seen::Failed(code, msg) => {
                    // Failure is not cached: clear the entry so a later
                    // submit retries the run (budget permitting).
                    inner.jobs.remove(&id);
                    break Err((code, msg));
                }
            }
        }
    };
    let (total, checksum) = match outcome {
        Ok(done) => done,
        Err((code, msg)) => {
            reject(shared, stream, code, &msg);
            return;
        }
    };
    // The artifact is complete, immutable and pinned from here on.
    let fully_streamed = stream_artifact(shared, stream, id, offset, total, checksum);
    let mut inner = shared.lock();
    if let Some(JobState {
        phase: Phase::Done { readers, .. },
        ..
    }) = inner.jobs.get_mut(&id)
    {
        *readers = readers.saturating_sub(1);
    }
    if fully_streamed {
        inner.stats.bytes_streamed += total - offset;
    }
}

/// Stream `[offset, total)` of a published artifact plus the final
/// `DONE`. Returns whether the whole suffix was delivered.
fn stream_artifact(
    shared: &Shared,
    stream: &mut TcpStream,
    id: u64,
    offset: u64,
    total: u64,
    checksum: u64,
) -> bool {
    if offset > total {
        reject(
            shared,
            stream,
            RejectCode::BadOffset,
            &format!("resume offset {offset} beyond artifact end {total}"),
        );
        return false;
    }
    if write_accept(stream, id, offset, total).is_err() {
        return false;
    }
    let path = shared.artifact_path(id);
    let chunk = shared.cfg.chunk_bytes.max(1);
    let streamed = stream_file_from(&path, offset, chunk, |off, data| {
        write_chunk(stream, off, data)
    });
    // A client that vanished mid-stream will reconnect and resume.
    streamed.is_ok() && write_done(stream, total, checksum).is_ok()
}
