//! The serve daemon: bounded queue, worker pool, artifact cache,
//! per-connection streaming.
//!
//! # Lifecycle of a job
//!
//! ```text
//! SUBMIT ──validate──► Queued ──worker──► Running ──► Done{total, checksum}
//!            │            │                  │
//!            ▼            ▼ (drain)          ▼ (runner error)
//!         REJECT       Failed{drained}    Failed
//! ```
//!
//! A job runs **at most once per artifact**: concurrent submits of the
//! same tuple coalesce onto one queue entry and all stream the same
//! artifact when it completes; a failed run is *not* cached — its
//! waiters get [`RejectCode::JobFailed`] and the next submit retries.
//!
//! The artifact is written to a temp path and renamed into the cache
//! only after the whole run and its checksum pass, so a crashed or
//! failed run can never leave a half-written file that a resume would
//! then trust.
//!
//! # Why streaming is resume-trivial
//!
//! Connections only ever stream *completed* artifacts (a submit for an
//! in-flight job waits for completion first). Resuming from byte
//! `offset` is therefore a plain `seek` — no generator state is ever
//! part of the resume contract, which is what keeps the token down to
//! `(tuple, offset)`.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use super::proto::{
    parse_request, write_accept, write_chunk, write_done, write_drain_ack, write_reject, JobSpec,
    RejectCode, RequestError, ServeMsg, MAX_REQUEST_FRAME,
};
use crate::frame::read_raw_frame;
use pa_graph::io::{stream_file_from, Fnv1a};

/// Executes admitted jobs. The serve layer owns scheduling, caching and
/// streaming; the runner owns *meaning* — `pa-cli` wires this to the
/// generation engines, tests plug in synthetic runners.
pub trait JobRunner: Send + Sync + 'static {
    /// Decide whether `spec` names a runnable job, with a named error
    /// for the [`RejectCode::BadRequest`] rejection if not. Runs on the
    /// connection thread — keep it cheap.
    fn validate(&self, spec: &JobSpec) -> Result<(), String>;

    /// Produce the complete artifact for `spec` at `out` (the server
    /// renames it into the cache afterwards). Resumes always continue
    /// the cached artifact, which is immutable once published, so the
    /// runner need not be byte-reproducible across runs — but if a
    /// re-run (after a server restart, say) produces different bytes,
    /// clients resuming an old prefix fail the whole-artifact checksum
    /// with a named error instead of silently stitching a hybrid.
    fn run(&self, spec: &JobSpec, out: &Path) -> Result<(), String>;
}

/// Daemon tuning. Every field is public; [`ServeConfig::new`] provides
/// defaults sized for tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory for artifacts (created if missing). One file per
    /// completed job, named by job id.
    pub jobs_dir: PathBuf,
    /// Queue bound, counting *queued* jobs only (running jobs have
    /// already left the queue). Full queue → `QueueFull` rejection.
    pub queue_cap: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Streaming chunk size in bytes.
    pub chunk_bytes: usize,
    /// The `retry_after` hint sent with `QueueFull` rejections.
    pub retry_after: Duration,
    /// Per-socket read/write timeout. Bounds half-open connections: a
    /// client that connects and never submits is dropped after this
    /// long, it cannot pin a connection slot forever.
    pub request_timeout: Duration,
}

impl ServeConfig {
    /// Defaults: queue of 16, 2 workers, 256 KiB chunks, 200 ms retry
    /// hint, 10 s socket timeout.
    pub fn new(jobs_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            jobs_dir: jobs_dir.into(),
            queue_cap: 16,
            workers: 2,
            chunk_bytes: 256 << 10,
            retry_after: Duration::from_millis(200),
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters reported by [`Server::stats`] and [`Server::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted to the queue (each admission leads to exactly one
    /// run attempt; lets tests sequence submissions deterministically).
    pub jobs_admitted: u64,
    /// Jobs actually executed to completion (coalesced/cached submits
    /// don't re-run).
    pub jobs_run: u64,
    /// Submits served from an existing entry — a run in flight or a
    /// cached artifact — instead of a fresh run.
    pub jobs_coalesced: u64,
    /// Rejections sent, of any code.
    pub rejects: u64,
    /// Queued jobs cancelled by a drain.
    pub jobs_drained: u64,
    /// Artifact bytes streamed to completion (suffix length on resume).
    pub bytes_streamed: u64,
}

enum Phase {
    Queued,
    Running,
    Done { total: u64, checksum: u64 },
    Failed { msg: String, drained: bool },
}

struct JobState {
    spec: JobSpec,
    phase: Phase,
}

struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobState>,
    draining: bool,
    running: usize,
    active_conns: usize,
    stats: ServeStats,
}

struct Shared {
    cfg: ServeConfig,
    runner: Arc<dyn JobRunner>,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Shared {
    fn artifact_path(&self, id: u64) -> PathBuf {
        self.cfg.jobs_dir.join(format!("{id:016x}.art"))
    }

    fn tmp_path(&self, id: u64) -> PathBuf {
        self.cfg.jobs_dir.join(format!("{id:016x}.tmp"))
    }

    /// Enter drain: stop admitting, fail everything queued, wake every
    /// waiter and worker. Idempotent. Returns `(running, dropped)` for
    /// the `DRAIN_ACK`.
    fn drain_now(&self) -> (u32, u32) {
        let mut inner = self.inner.lock().unwrap();
        inner.draining = true;
        let mut dropped = 0u32;
        while let Some(id) = inner.queue.pop_front() {
            if let Some(job) = inner.jobs.get_mut(&id) {
                job.phase = Phase::Failed {
                    msg: "job drained before start".into(),
                    drained: true,
                };
            }
            dropped += 1;
        }
        inner.stats.jobs_drained += u64::from(dropped);
        self.cond.notify_all();
        (inner.running as u32, dropped)
    }
}

/// A running serve daemon. Dropping the handle does *not* stop it; the
/// clean shutdown sequence is [`Server::drain`] (or a `DRAIN_REQ` over
/// the wire) followed by [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and start the daemon.
    ///
    /// # Errors
    ///
    /// Bind failures and a jobs-directory that cannot be created.
    pub fn bind(addr: &str, cfg: ServeConfig, runner: impl JobRunner) -> io::Result<Server> {
        Server::start(TcpListener::bind(addr)?, cfg, runner)
    }

    /// Start the daemon on an already-bound listener (lets tests bind
    /// port 0 themselves).
    ///
    /// # Errors
    ///
    /// A jobs-directory that cannot be created, or a listener that
    /// cannot report its local address / switch to non-blocking mode.
    pub fn start(
        listener: TcpListener,
        cfg: ServeConfig,
        runner: impl JobRunner,
    ) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.jobs_dir)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            runner: Arc::new(runner),
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                draining: false,
                running: 0,
                active_conns: 0,
                stats: ServeStats::default(),
            }),
            cond: Condvar::new(),
        });
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The daemon's listen address (with the OS-assigned port when
    /// bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic drain — same semantics as a `DRAIN_REQ` over the
    /// wire. Returns `(running, dropped)`.
    pub fn drain(&self) -> (u32, u32) {
        self.shared.drain_now()
    }

    /// Snapshot of the daemon's counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.inner.lock().unwrap().stats
    }

    /// Wait for the daemon to finish. **Blocks until a drain arrives**
    /// (via [`Server::drain`] or the wire) and every in-flight job has
    /// finished streaming — this is the daemon's main "run until told
    /// to stop" call.
    pub fn join(mut self) -> ServeStats {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.cond.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let stats = self.shared.inner.lock().unwrap().stats;
        stats
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (id, spec) = {
            let mut inner = shared.inner.lock().unwrap();
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    let job = inner.jobs.get_mut(&id).expect("queued job has state");
                    job.phase = Phase::Running;
                    let spec = job.spec;
                    inner.running += 1;
                    break (id, spec);
                }
                if inner.draining {
                    return;
                }
                inner = shared.cond.wait(inner).unwrap();
            }
        };
        let outcome = run_job(shared, id, &spec);
        let mut inner = shared.inner.lock().unwrap();
        inner.running -= 1;
        if outcome.is_ok() {
            inner.stats.jobs_run += 1;
        }
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.phase = match outcome {
                Ok((total, checksum)) => Phase::Done { total, checksum },
                Err(msg) => Phase::Failed {
                    msg,
                    drained: false,
                },
            };
        }
        shared.cond.notify_all();
    }
}

/// Execute one job: run to a temp path, checksum, rename into the
/// cache. Returns `(total_bytes, checksum)`.
fn run_job(shared: &Shared, id: u64, spec: &JobSpec) -> Result<(u64, u64), String> {
    let tmp = shared.tmp_path(id);
    let finished = shared.artifact_path(id);
    let result = shared.runner.run(spec, &tmp).and_then(|()| {
        let mut hasher = Fnv1a::new();
        let total = stream_file_from(&tmp, 0, 1 << 20, |_, data| {
            hasher.update(data);
            Ok(())
        })
        .map_err(|e| format!("checksum pass over fresh artifact failed: {e}"))?;
        std::fs::rename(&tmp, &finished)
            .map_err(|e| format!("publishing artifact {}: {e}", finished.display()))?;
        Ok((total, hasher.digest()))
    });
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        {
            let inner = shared.inner.lock().unwrap();
            if inner.draining
                && inner.queue.is_empty()
                && inner.running == 0
                && inner.active_conns == 0
            {
                return;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.inner.lock().unwrap().active_conns += 1;
                let shared = Arc::clone(shared);
                let _ = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        handle_conn(&shared, stream);
                        shared.inner.lock().unwrap().active_conns -= 1;
                        shared.cond.notify_all();
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Send a rejection (best effort — the peer may already be gone) and
/// count it.
fn reject(shared: &Shared, stream: &mut TcpStream, code: RejectCode, msg: &str) {
    let retry_after = if code.is_retryable() {
        shared.cfg.retry_after
    } else {
        Duration::ZERO
    };
    let _ = write_reject(stream, code, retry_after, msg);
    shared.inner.lock().unwrap().stats.rejects += 1;
}

/// Close without slamming the door: half-close the write side, then
/// drain (bounded) whatever the peer already sent. Closing with unread
/// bytes in the receive queue makes the kernel send RST, which races
/// ahead of the final reply frame and can destroy it before the client
/// reads it — a rejected client would then see "connection reset"
/// instead of the named error it was sent.
fn linger_close(mut stream: TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf = [0u8; 4096];
    for _ in 0..64 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.request_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.request_timeout));
    let _ = stream.set_nodelay(true);
    serve_conn(shared, &mut stream);
    linger_close(stream);
}

fn serve_conn(shared: &Shared, stream: &mut TcpStream) {
    let mut payload = Vec::new();
    let kind = match read_raw_frame(stream, &mut payload, MAX_REQUEST_FRAME) {
        Ok(kind) => kind,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // A framing violation (oversized or zero length) still gets a
            // named answer — the bytes after it are unparseable, so the
            // connection closes right after.
            reject(shared, stream, RejectCode::BadRequest, &e.to_string());
            return;
        }
        // EOF, timeout (half-open connection), or reset: nothing to say.
        Err(_) => return,
    };
    match parse_request(kind, &payload) {
        Ok(ServeMsg::Submit { spec, offset }) => handle_submit(shared, stream, spec, offset),
        Ok(ServeMsg::DrainReq) => {
            let (running, dropped) = shared.drain_now();
            let _ = write_drain_ack(stream, running, dropped);
        }
        Ok(_) => reject(
            shared,
            stream,
            RejectCode::BadRequest,
            "reply kind sent as a request",
        ),
        Err(RequestError::Version(msg)) => {
            reject(shared, stream, RejectCode::UnsupportedVersion, &msg);
        }
        Err(RequestError::Malformed(msg)) => {
            reject(shared, stream, RejectCode::BadRequest, &msg);
        }
    }
}

fn handle_submit(shared: &Shared, stream: &mut TcpStream, spec: JobSpec, offset: u64) {
    if let Err(msg) = shared.runner.validate(&spec) {
        reject(shared, stream, RejectCode::BadRequest, &msg);
        return;
    }
    let id = spec.job_id();
    // Admission: find or create the job entry, then wait out Queued and
    // Running under the condvar. FIFO is the queue's order; admission
    // order is the lock-acquisition order of this critical section.
    let outcome = {
        let mut inner = shared.inner.lock().unwrap();
        let mut coalesced_counted = false;
        loop {
            match inner.jobs.get(&id).map(|j| &j.phase) {
                None => {
                    // Admission decisions (drain, capacity) apply only to
                    // *new* work: a waiter on an in-flight job keeps
                    // waiting through a drain and still gets its stream.
                    if inner.draining {
                        break Err((RejectCode::Draining, "server is draining".to_string()));
                    }
                    if inner.queue.len() >= shared.cfg.queue_cap {
                        break Err((
                            RejectCode::QueueFull,
                            format!("job queue at capacity ({})", shared.cfg.queue_cap),
                        ));
                    }
                    inner.jobs.insert(
                        id,
                        JobState {
                            spec,
                            phase: Phase::Queued,
                        },
                    );
                    inner.queue.push_back(id);
                    inner.stats.jobs_admitted += 1;
                    // The admitter now waits like everyone else, but it
                    // is the one submit that is *not* a coalesce.
                    coalesced_counted = true;
                    shared.cond.notify_all();
                }
                Some(Phase::Queued | Phase::Running) => {
                    if !coalesced_counted {
                        inner.stats.jobs_coalesced += 1;
                        coalesced_counted = true;
                    }
                    inner = shared.cond.wait(inner).unwrap();
                }
                Some(Phase::Done { total, checksum }) => {
                    let done = (*total, *checksum);
                    if !coalesced_counted {
                        inner.stats.jobs_coalesced += 1;
                    }
                    break Ok(done);
                }
                Some(Phase::Failed { msg, drained }) => {
                    let code = if *drained {
                        RejectCode::Draining
                    } else {
                        RejectCode::JobFailed
                    };
                    let msg = msg.clone();
                    // Failure is not cached: clear the entry so a later
                    // submit retries the run.
                    inner.jobs.remove(&id);
                    break Err((code, msg));
                }
            }
        }
    };
    let (total, checksum) = match outcome {
        Ok(done) => done,
        Err((code, msg)) => {
            reject(shared, stream, code, &msg);
            return;
        }
    };
    // A freshly-run job was counted in jobs_run by the worker; a cache
    // hit was counted in jobs_coalesced above. Either way the artifact
    // is complete and immutable from here on.
    if offset > total {
        reject(
            shared,
            stream,
            RejectCode::BadOffset,
            &format!("resume offset {offset} beyond artifact end {total}"),
        );
        return;
    }
    if write_accept(stream, id, offset, total).is_err() {
        return;
    }
    let path = shared.artifact_path(id);
    let chunk = shared.cfg.chunk_bytes.max(1);
    let streamed = stream_file_from(&path, offset, chunk, |off, data| {
        write_chunk(stream, off, data)
    });
    if streamed.is_err() || write_done(stream, total, checksum).is_err() {
        // The client vanished mid-stream; it will reconnect and resume.
        return;
    }
    shared.inner.lock().unwrap().stats.bytes_streamed += total - offset;
}
