//! [`TcpTransport`]: the multi-process socket backend.
//!
//! One rank per OS process; every pair of ranks shares one TCP
//! connection carrying the length-prefixed frames of the private
//! `frame` module. Each connection
//! gets a dedicated *reader thread* that parses frames and feeds them
//! into shared state; the engine thread only ever touches that state, so
//! the [`Transport`] calls keep the exact semantics of the in-process
//! backends:
//!
//! * **Sends** serialize the batch with the message type's [`Wire`]
//!   encoding and push one `DATA` frame down the destination's socket
//!   (`TCP_NODELAY`, single `write_all`). The drained `Vec` goes back to
//!   a process-local packet pool — buffers never cross the wire, only
//!   bytes do — so steady-state traffic stays allocation-free just like
//!   the channel backend. Self-sends short-circuit through the inbox.
//! * **Receives** pop a single inbox (`Mutex<VecDeque>` + condvar) that
//!   all reader threads feed. `drain_recv` never blocks; `recv_timeout`
//!   parks on the condvar and is woken by the first arrival.
//! * **Collectives** run on a binary tree (children of rank `r` are
//!   `2r+1`, `2r+2`): contributions flow leaf-to-root as `COLL_UP`
//!   frames, rank 0 assembles the per-rank snapshot, and the snapshot
//!   flows root-to-leaf as `COLL_DOWN`. Every collective in the trait is
//!   one tree round over the snapshot (sum, max, min, gather, broadcast,
//!   prefix sum), so `P` ranks need `O(log P)` hops, not `O(P)`.
//! * **Termination** is a distributed ledger. `add` only stages work
//!   locally; the next [`Transport::barrier`] folds every rank's staged
//!   adds into the collective and all ranks grow the global *target* by
//!   the same total — this is precisely the trait's "registration is
//!   published by a barrier" contract. `complete` bumps a local counter
//!   that is broadcast as `TERM` frames from the receive paths (new
//!   counts piggyback on the engine's existing service cadence), and
//!   `is_done` holds when `target` equals the sum of every rank's last
//!   known counter. Counters are monotone, so stale `TERM` frames are
//!   harmless (`fetch_max`).
//!
//! # Failure semantics
//!
//! A peer that closes its connection *without* the orderly `BYE` frame
//! has crashed. Sends to it are dropped silently (the trait's "late
//! traffic is parked" rule — sends never fail), but every receive call
//! and every collective panics with a diagnostic naming the dead rank,
//! so a killed rank takes the whole job down with an explanation instead
//! of a hang. Collectives additionally carry their own timeout
//! ([`crate::TcpConfig::collective_timeout`]) as a backstop against a
//! peer that is alive but wedged.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pa_mpsim::wire::{get_u32, get_u64};
use pa_mpsim::{CommStats, Packet, TerminationBackend, TerminationHandle, Transport, Wire};

use crate::frame::{self, Kind};

/// How long a parked wait sleeps between liveness checks. Condvar
/// notifications wake waiters immediately; the slice only bounds how
/// late a *missed* signal (or a crash flag set without one) is noticed.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Send-buffer pool cap: beyond this many parked buffers, recycled
/// buffers are dropped instead of hoarded.
const POOL_CAP: usize = 256;

/// State shared between the engine thread and the reader threads.
pub(crate) struct Shared<M> {
    pub(crate) rank: usize,
    pub(crate) world: usize,
    /// One writer per peer (`None` at `self.rank`). A `Mutex` because
    /// reader threads also send (`TERM` acknowledgement-free broadcasts
    /// never originate from readers, but collectives and termination
    /// flushes can race engine-side sends only through this lock).
    writers: Vec<Option<Mutex<TcpStream>>>,
    /// Packets parsed by reader threads, awaiting the engine.
    inbox: Mutex<VecDeque<Packet<M>>>,
    inbox_cv: Condvar,
    /// Recycled send buffers; readers also draw decode buffers from
    /// here, closing the acquire → send → decode → recycle loop.
    pool: Mutex<Vec<Vec<M>>>,
    coll: Mutex<CollState>,
    coll_cv: Condvar,
    coll_round: AtomicU64,
    /// Collective deadline in milliseconds. Atomic so the driver can
    /// tighten it to the engine's stall budget after bootstrap — a
    /// wedged collective then fires the stall-watchdog diagnostic
    /// instead of blocking past `GenOptions::stall_timeout`.
    coll_timeout_ms: AtomicU64,
    term: TermState,
    /// Per-peer: orderly `BYE` received.
    peer_bye: Vec<AtomicBool>,
    /// Per-peer: connection died without `BYE`.
    peer_crashed: Vec<AtomicBool>,
    /// Why (first failure wins); indexed like `peer_crashed`.
    peer_reason: Mutex<Vec<Option<String>>>,
    /// Set by `close()`: read errors after this are expected teardown.
    shutting_down: AtomicBool,
}

/// Collective rounds in flight. Keyed by round number so a fast parent
/// starting round `n + 1` cannot corrupt a slow child still in `n`.
#[derive(Default)]
struct CollState {
    /// Up-phase contributions received per round: `(rank, value)`.
    up: HashMap<u64, Vec<(u32, u64)>>,
    /// Down-phase snapshot received per round.
    down: HashMap<u64, Vec<u64>>,
}

/// The distributed termination ledger.
struct TermState {
    /// Work registered locally since the last barrier (unpublished).
    staged: AtomicU64,
    /// Global registered total, grown identically on every rank by each
    /// barrier.
    target: AtomicU64,
    /// Last known completed count per rank; `[self.rank]` is live, the
    /// rest advance on `TERM` frames.
    completed: Vec<AtomicU64>,
    /// Own completed count as last broadcast.
    broadcast: AtomicU64,
}

/// Number of ranks in the binary-tree subtree rooted at `r`.
fn subtree_size(r: usize, world: usize) -> usize {
    if r >= world {
        0
    } else {
        1 + subtree_size(2 * r + 1, world) + subtree_size(2 * r + 2, world)
    }
}

impl<M: Wire + Send + 'static> Shared<M> {
    fn new(
        rank: usize,
        world: usize,
        writers: Vec<Option<Mutex<TcpStream>>>,
        coll_timeout: Duration,
    ) -> Self {
        Shared {
            rank,
            world,
            writers,
            inbox: Mutex::new(VecDeque::new()),
            inbox_cv: Condvar::new(),
            pool: Mutex::new(Vec::new()),
            coll: Mutex::new(CollState::default()),
            coll_cv: Condvar::new(),
            coll_round: AtomicU64::new(0),
            coll_timeout_ms: AtomicU64::new(coll_timeout.as_millis().max(1) as u64),
            term: TermState {
                staged: AtomicU64::new(0),
                target: AtomicU64::new(0),
                completed: (0..world).map(|_| AtomicU64::new(0)).collect(),
                broadcast: AtomicU64::new(0),
            },
            peer_bye: (0..world).map(|_| AtomicBool::new(false)).collect(),
            peer_crashed: (0..world).map(|_| AtomicBool::new(false)).collect(),
            peer_reason: Mutex::new(vec![None; world]),
            shutting_down: AtomicBool::new(false),
        }
    }

    /// Write a prebuilt frame to `dest`. Errors mark the peer down and
    /// drop the frame: sends never fail (the "late traffic" rule); the
    /// receive paths surface the crash.
    fn send_bytes(&self, dest: usize, bytes: &[u8]) {
        use std::io::Write;
        if let Some(w) = &self.writers[dest] {
            let mut stream = w.lock().unwrap();
            if let Err(e) = stream.write_all(bytes) {
                self.mark_peer_down(dest, &format!("write failed: {e}"));
            }
        }
    }

    /// Record a dead connection and wake anything parked on it.
    fn mark_peer_down(&self, peer: usize, why: &str) {
        if self.shutting_down.load(Ordering::Acquire) || self.peer_bye[peer].load(Ordering::Acquire)
        {
            return; // expected teardown, not a crash
        }
        {
            let mut reasons = self.peer_reason.lock().unwrap();
            reasons[peer].get_or_insert_with(|| why.to_string());
        }
        self.peer_crashed[peer].store(true, Ordering::Release);
        self.inbox_cv.notify_all();
        self.coll_cv.notify_all();
    }

    /// Panic with a diagnostic if any peer died without a `BYE`.
    fn check_alive(&self, during: &str) {
        for p in 0..self.world {
            if self.peer_crashed[p].load(Ordering::Acquire) {
                let why = self.peer_reason.lock().unwrap()[p]
                    .clone()
                    .unwrap_or_else(|| "connection lost".into());
                panic!(
                    "rank {}: lost connection to rank {p} during {during} ({why}); \
                     peer died mid-run, aborting",
                    self.rank
                );
            }
        }
    }

    /// Broadcast our completed counter if it moved since the last
    /// broadcast. Called from every receive path and every collective,
    /// so new counts ride the engine's existing service cadence.
    fn flush_term(&self) {
        if self.world == 1 {
            return;
        }
        let own = self.term.completed[self.rank].load(Ordering::Acquire);
        if own > self.term.broadcast.load(Ordering::Acquire) {
            self.term.broadcast.store(own, Ordering::Release);
            let mut buf = Vec::with_capacity(13);
            frame::build_frame(&mut buf, Kind::Term, |b| {
                b.extend_from_slice(&own.to_le_bytes());
            });
            for p in 0..self.world {
                if p != self.rank {
                    self.send_bytes(p, &buf);
                }
            }
        }
    }

    /// The global quiescence predicate; see [`TermState`].
    fn term_done(&self) -> bool {
        if self.term.staged.load(Ordering::Acquire) != 0 {
            return false; // unpublished local work
        }
        let target = self.term.target.load(Ordering::Acquire);
        let done: u64 = self
            .term
            .completed
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum();
        if done < target {
            return false;
        }
        // Our own final count must reach the other ranks or they will
        // wait forever; the flush is idempotent once broadcast.
        self.flush_term();
        true
    }

    /// One tree round: every rank contributes `val`; every rank returns
    /// with the full per-rank snapshot.
    fn collective(&self, val: u64) -> Vec<u64> {
        self.flush_term();
        if self.world == 1 {
            return vec![val];
        }
        let round = self.coll_round.fetch_add(1, Ordering::SeqCst);
        let r = self.rank;
        let children: Vec<usize> = [2 * r + 1, 2 * r + 2]
            .into_iter()
            .filter(|&c| c < self.world)
            .collect();
        let expected: usize = children.iter().map(|&c| subtree_size(c, self.world)).sum();
        let timeout = Duration::from_millis(self.coll_timeout_ms.load(Ordering::Acquire));
        let deadline = Instant::now() + timeout;

        // Up phase: wait for the whole subtree, then contribute upward.
        let mut pairs: Vec<(u32, u64)> = Vec::with_capacity(expected + 1);
        pairs.push((r as u32, val));
        {
            let mut g = self.coll.lock().unwrap();
            while g.up.get(&round).map_or(0, Vec::len) < expected {
                drop(g);
                self.check_alive("a collective (up phase)");
                assert!(
                    Instant::now() < deadline,
                    "stall watchdog fired on rank {r}: collective round {round} made no \
                     progress for {timeout:?} waiting for child contributions — is a peer \
                     wedged?"
                );
                g = self.coll.lock().unwrap();
                let (ng, _) = self.coll_cv.wait_timeout(g, WAIT_SLICE).unwrap();
                g = ng;
            }
            if let Some(mut subtree) = g.up.remove(&round) {
                pairs.append(&mut subtree);
            }
        }

        let snapshot = if r == 0 {
            let mut snap = vec![0u64; self.world];
            for &(pr, pv) in &pairs {
                snap[pr as usize] = pv;
            }
            snap
        } else {
            let mut buf = Vec::with_capacity(4 + 1 + 8 + 4 + pairs.len() * 12);
            frame::build_frame(&mut buf, Kind::CollUp, |b| {
                b.extend_from_slice(&round.to_le_bytes());
                b.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for &(pr, pv) in &pairs {
                    b.extend_from_slice(&pr.to_le_bytes());
                    b.extend_from_slice(&pv.to_le_bytes());
                }
            });
            self.send_bytes((r - 1) / 2, &buf);

            // Down phase: wait for the snapshot from the parent.
            let mut g = self.coll.lock().unwrap();
            loop {
                if let Some(snap) = g.down.remove(&round) {
                    break snap;
                }
                drop(g);
                self.check_alive("a collective (down phase)");
                assert!(
                    Instant::now() < deadline,
                    "stall watchdog fired on rank {r}: collective round {round} made no \
                     progress for {timeout:?} waiting for the snapshot — is a peer wedged?"
                );
                g = self.coll.lock().unwrap();
                let (ng, _) = self.coll_cv.wait_timeout(g, WAIT_SLICE).unwrap();
                g = ng;
            }
        };

        // Forward the snapshot to our children.
        if !children.is_empty() {
            let mut buf = Vec::with_capacity(4 + 1 + 8 + 4 + snapshot.len() * 8);
            frame::build_frame(&mut buf, Kind::CollDown, |b| {
                b.extend_from_slice(&round.to_le_bytes());
                b.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
                for &v in &snapshot {
                    b.extend_from_slice(&v.to_le_bytes());
                }
            });
            for &c in &children {
                self.send_bytes(c, &buf);
            }
        }
        snapshot
    }

    /// Barrier: one collective round that additionally publishes staged
    /// termination adds — every rank grows the target by the same global
    /// total, which is what makes `add → barrier → observe` sound.
    fn barrier_publish(&self) {
        let staged = self.term.staged.swap(0, Ordering::AcqRel);
        let total: u64 = self.collective(staged).iter().sum();
        if total > 0 {
            self.term.target.fetch_add(total, Ordering::AcqRel);
        }
    }

    fn pool_get(&self) -> Option<Vec<M>> {
        self.pool.lock().unwrap().pop()
    }

    fn pool_put(&self, mut buf: Vec<M>) {
        buf.clear();
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }

    /// Body of the reader thread for `peer`'s connection.
    fn reader_loop(&self, peer: usize, mut stream: TcpStream) {
        let mut payload = Vec::new();
        loop {
            let kind = match frame::read_frame(&mut stream, &mut payload) {
                Ok(k) => k,
                Err(e) => {
                    self.mark_peer_down(peer, &format!("connection closed unexpectedly: {e}"));
                    return;
                }
            };
            match kind {
                Kind::Data => {
                    let mut input = payload.as_slice();
                    let Some(count) = get_u32(&mut input) else {
                        self.mark_peer_down(peer, "corrupt DATA frame (no count)");
                        return;
                    };
                    let mut msgs = self.pool_get().unwrap_or_default();
                    msgs.reserve(count as usize);
                    for _ in 0..count {
                        let Some(m) = M::decode(&mut input) else {
                            self.mark_peer_down(peer, "corrupt DATA frame (bad message)");
                            return;
                        };
                        msgs.push(m);
                    }
                    let mut q = self.inbox.lock().unwrap();
                    q.push_back(Packet { src: peer, msgs });
                    drop(q);
                    self.inbox_cv.notify_all();
                }
                Kind::Term => {
                    let mut input = payload.as_slice();
                    let Some(v) = get_u64(&mut input) else {
                        self.mark_peer_down(peer, "corrupt TERM frame");
                        return;
                    };
                    self.term.completed[peer].fetch_max(v, Ordering::AcqRel);
                    // Wake parked ranks so `is_done` pollers notice.
                    self.inbox_cv.notify_all();
                }
                Kind::CollUp => {
                    let mut input = payload.as_slice();
                    let parsed = (|| {
                        let round = get_u64(&mut input)?;
                        let count = get_u32(&mut input)?;
                        let mut pairs = Vec::with_capacity(count as usize);
                        for _ in 0..count {
                            let pr = get_u32(&mut input)?;
                            let pv = get_u64(&mut input)?;
                            pairs.push((pr, pv));
                        }
                        Some((round, pairs))
                    })();
                    let Some((round, mut pairs)) = parsed else {
                        self.mark_peer_down(peer, "corrupt COLL_UP frame");
                        return;
                    };
                    let mut g = self.coll.lock().unwrap();
                    g.up.entry(round).or_default().append(&mut pairs);
                    drop(g);
                    self.coll_cv.notify_all();
                }
                Kind::CollDown => {
                    let mut input = payload.as_slice();
                    let parsed = (|| {
                        let round = get_u64(&mut input)?;
                        let count = get_u32(&mut input)?;
                        let mut snap = Vec::with_capacity(count as usize);
                        for _ in 0..count {
                            snap.push(get_u64(&mut input)?);
                        }
                        Some((round, snap))
                    })();
                    let Some((round, snap)) = parsed else {
                        self.mark_peer_down(peer, "corrupt COLL_DOWN frame");
                        return;
                    };
                    let mut g = self.coll.lock().unwrap();
                    g.down.insert(round, snap);
                    drop(g);
                    self.coll_cv.notify_all();
                }
                Kind::Bye => {
                    self.peer_bye[peer].store(true, Ordering::Release);
                    return;
                }
                Kind::Hello => {
                    self.mark_peer_down(peer, "unexpected HELLO after bootstrap");
                    return;
                }
            }
        }
    }
}

/// The termination backend handed to [`TerminationHandle`]; see the
/// [module docs](self) for the ledger design.
struct NetTermination<M> {
    shared: Arc<Shared<M>>,
}

impl<M: Wire + Send + 'static> TerminationBackend for NetTermination<M> {
    fn add(&self, n: u64) {
        self.shared.term.staged.fetch_add(n, Ordering::AcqRel);
    }

    fn complete(&self, n: u64) {
        self.shared.term.completed[self.shared.rank].fetch_add(n, Ordering::AcqRel);
    }

    fn is_done(&self) -> bool {
        self.shared.term_done()
    }

    fn outstanding(&self) -> i64 {
        let t = &self.shared.term;
        let known = t.staged.load(Ordering::Acquire) + t.target.load(Ordering::Acquire);
        let done: u64 = t.completed.iter().map(|c| c.load(Ordering::Acquire)).sum();
        known as i64 - done as i64
    }
}

/// A [`Transport`] over per-pair TCP connections; one rank per process.
///
/// Built by [`TcpTransport::connect`] from a [`TcpConfig`] (see
/// [`crate::bootstrap`] for the dial/accept protocol). See the
/// [module docs](self) for the wire design and failure semantics.
///
/// [`TcpConfig`]: crate::TcpConfig
/// [`TcpTransport::connect`]: crate::TcpTransport::connect
pub struct TcpTransport<M: Wire + Send + 'static> {
    pub(crate) shared: Arc<Shared<M>>,
    pub(crate) readers: Vec<JoinHandle<()>>,
    stats: CommStats,
    /// Reused frame-encode buffer for the DATA hot path.
    scratch: Vec<u8>,
    closed: bool,
}

impl<M: Wire + Send + 'static> TcpTransport<M> {
    /// Assemble a transport from bootstrapped connections and spawn the
    /// reader threads. `streams[p]` is the connection to rank `p`
    /// (`None` at `rank`).
    pub(crate) fn from_streams(
        rank: usize,
        world: usize,
        streams: Vec<Option<TcpStream>>,
        coll_timeout: Duration,
    ) -> std::io::Result<Self> {
        let mut writers: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(world);
        let mut read_halves: Vec<Option<TcpStream>> = Vec::with_capacity(world);
        for s in streams {
            match s {
                Some(stream) => {
                    stream.set_nodelay(true)?;
                    read_halves.push(Some(stream.try_clone()?));
                    writers.push(Some(Mutex::new(stream)));
                }
                None => {
                    read_halves.push(None);
                    writers.push(None);
                }
            }
        }
        let shared = Arc::new(Shared::new(rank, world, writers, coll_timeout));
        let mut readers = Vec::new();
        for (peer, half) in read_halves.into_iter().enumerate() {
            if let Some(stream) = half {
                let shared = Arc::clone(&shared);
                readers.push(
                    std::thread::Builder::new()
                        .name(format!("pa-net-r{rank}-from{peer}"))
                        .spawn(move || shared.reader_loop(peer, stream))
                        .expect("spawn reader thread"),
                );
            }
        }
        Ok(TcpTransport {
            shared,
            readers,
            stats: CommStats::new(world),
            scratch: Vec::new(),
            closed: false,
        })
    }

    /// Orderly teardown: announce `BYE` on every connection, shut the
    /// sockets down (which unblocks our reader threads), and join them.
    /// Idempotent; also run by `Drop`.
    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let mut bye = Vec::with_capacity(5);
        frame::build_frame(&mut bye, Kind::Bye, |_| {});
        for p in 0..self.shared.world {
            if p != self.shared.rank {
                self.shared.send_bytes(p, &bye);
            }
            if let Some(w) = &self.shared.writers[p] {
                // BYE is queued before FIN: shutdown flushes then closes,
                // and our reader (a clone of this socket) sees EOF.
                let _ = w.lock().unwrap().shutdown(Shutdown::Both);
            }
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }

    /// Cap the deadline of every subsequent collective. The driver sets
    /// this to (at most) `GenOptions::stall_timeout` so a wedged barrier
    /// or allreduce fires the stall-watchdog diagnostic on the same
    /// schedule as a wedged point-to-point phase, instead of blocking
    /// for the full bootstrap-time [`crate::TcpConfig::collective_timeout`].
    pub fn set_collective_timeout(&self, timeout: Duration) {
        self.shared
            .coll_timeout_ms
            .store(timeout.as_millis().max(1) as u64, Ordering::Release);
    }

    /// Abruptly sever every connection *without* the orderly `BYE`,
    /// emulating this rank being killed mid-run: peers must detect the
    /// crash and abort with a diagnostic. Test hook for the failure
    /// path; real crashes exercise it via the kernel closing the
    /// sockets of a dead process.
    #[doc(hidden)]
    pub fn sever(mut self) {
        self.closed = true; // suppress the orderly close in Drop
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        for w in self.shared.writers.iter().flatten() {
            let _ = w.lock().unwrap().shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<M: Wire + Send + 'static> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<M: Wire + Send + 'static> Transport<M> for TcpTransport<M> {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn nranks(&self) -> usize {
        self.shared.world
    }

    fn send(&mut self, dest: usize, msg: M) {
        let mut buf = self.acquire_buffer(dest);
        buf.push(msg);
        self.send_batch(dest, buf);
    }

    fn send_batch(&mut self, dest: usize, msgs: Vec<M>) {
        if msgs.is_empty() {
            return;
        }
        self.stats.on_send(dest, msgs.len() as u64);
        if dest == self.shared.rank {
            let mut q = self.shared.inbox.lock().unwrap();
            q.push_back(Packet { src: dest, msgs });
            drop(q);
            self.shared.inbox_cv.notify_all();
            return;
        }
        frame::begin_frame(&mut self.scratch, Kind::Data);
        self.scratch
            .extend_from_slice(&(msgs.len() as u32).to_le_bytes());
        for m in &msgs {
            m.encode(&mut self.scratch);
        }
        frame::finish_frame(&mut self.scratch);
        self.shared.send_bytes(dest, &self.scratch);
        // Only bytes crossed the wire; the buffer is reusable right away.
        self.shared.pool_put(msgs);
    }

    fn acquire_buffer(&mut self, _dest: usize) -> Vec<M> {
        match self.shared.pool_get() {
            Some(buf) => {
                self.stats.pool_hits += 1;
                buf
            }
            None => {
                self.stats.pool_misses += 1;
                Vec::new()
            }
        }
    }

    fn recycle(&mut self, _src: usize, buf: Vec<M>) {
        self.stats.bufs_recycled += 1;
        self.shared.pool_put(buf);
    }

    fn try_recv(&mut self) -> Option<Packet<M>> {
        self.shared.flush_term();
        self.shared.check_alive("a receive");
        let pkt = self.shared.inbox.lock().unwrap().pop_front()?;
        self.stats.on_recv(pkt.src, pkt.msgs.len() as u64);
        Some(pkt)
    }

    fn drain_recv(&mut self, out: &mut Vec<Packet<M>>) -> usize {
        self.shared.flush_term();
        self.shared.check_alive("a receive");
        let start = out.len();
        {
            let mut q = self.shared.inbox.lock().unwrap();
            out.extend(q.drain(..));
        }
        for pkt in &out[start..] {
            self.stats.on_recv(pkt.src, pkt.msgs.len() as u64);
        }
        out.len() - start
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<Packet<M>> {
        self.shared.flush_term();
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.inbox.lock().unwrap();
        loop {
            if let Some(pkt) = q.pop_front() {
                drop(q);
                self.stats.on_recv(pkt.src, pkt.msgs.len() as u64);
                return Some(pkt);
            }
            drop(q);
            self.shared.check_alive("a receive");
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            q = self.shared.inbox.lock().unwrap();
            let wait = (deadline - now).min(WAIT_SLICE);
            let (nq, _) = self.shared.inbox_cv.wait_timeout(q, wait).unwrap();
            q = nq;
        }
    }

    fn barrier(&self) {
        self.shared.barrier_publish();
    }

    fn allreduce_sum(&self, val: u64) -> u64 {
        self.shared.collective(val).iter().sum()
    }

    fn allreduce_max(&self, val: u64) -> u64 {
        self.shared.collective(val).into_iter().max().unwrap_or(val)
    }

    fn allreduce_min(&self, val: u64) -> u64 {
        self.shared.collective(val).into_iter().min().unwrap_or(val)
    }

    fn allgather_u64(&self, val: u64) -> Vec<u64> {
        self.shared.collective(val)
    }

    fn broadcast_u64(&self, root: usize, val: u64) -> u64 {
        self.shared.collective(val)[root]
    }

    fn exclusive_prefix_sum(&self, val: u64) -> u64 {
        self.shared.collective(val)[..self.shared.rank].iter().sum()
    }

    fn termination(&self) -> TerminationHandle {
        TerminationHandle::from_backend(Arc::new(NetTermination {
            shared: Arc::clone(&self.shared),
        }))
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut CommStats {
        &mut self.stats
    }

    fn into_stats(mut self) -> CommStats {
        self.close();
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtree_sizes_partition_the_world() {
        for world in 1..40 {
            assert_eq!(subtree_size(0, world), world, "world {world}");
            for r in 0..world {
                let children: usize = [2 * r + 1, 2 * r + 2]
                    .into_iter()
                    .filter(|&c| c < world)
                    .map(|c| subtree_size(c, world))
                    .sum();
                assert_eq!(subtree_size(r, world), 1 + children);
            }
        }
    }
}
