//! Supervision matrix for the serve daemon: seeded fault injection
//! (panic / wedge-past-deadline / io-error / slow-but-ok) × concurrent
//! waiters, in the spirit of the transport's `FaultPlan` chaos tests.
//!
//! The invariants pinned here are the self-healing contract:
//!
//! * every client observes a **named** reject or a checksum-verified
//!   artifact — never a hang;
//! * the worker pool returns to its configured size after every fault;
//! * the counters reconcile after quiescence:
//!   `admitted == run + failed + drained`;
//! * a restart on the same jobs directory serves the pre-crash cache
//!   without re-running, and deletes temp litter.
//!
//! Faults are chosen by a pure function of `(plan, seed)`, so the test
//! *searches* for seeds with the faults it wants — deterministic, no
//! global state, and every expectation is computable up front.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pa_graph::io::Fnv1a;
use pa_net::serve::{
    fetch, FetchError, FetchOptions, JobRunner, JobSpec, ServeConfig, ServeStatus, Server,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Ok,
    Panic,
    Wedge,
    IoError,
    Slow,
}

/// The fault a runner injects for `seed` under `plan` — a pure
/// function, so tests can pick seeds with the faults they want.
fn fault_for(plan: u64, seed: u64) -> Fault {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&plan.to_le_bytes());
    bytes[8..].copy_from_slice(&seed.to_le_bytes());
    match Fnv1a::hash(&bytes) % 5 {
        0 => Fault::Ok,
        1 => Fault::Panic,
        2 => Fault::Wedge,
        3 => Fault::IoError,
        _ => Fault::Slow,
    }
}

/// The first `k` seeds whose fault under `plan` is `fault`.
fn seeds_with(plan: u64, fault: Fault, k: usize) -> Vec<u64> {
    (1u64..)
        .filter(|s| fault_for(plan, *s) == fault)
        .take(k)
        .collect()
}

fn pattern_byte(seed: u64, i: u64) -> u8 {
    (seed.wrapping_add(i).wrapping_mul(0x9e37_79b9)) as u8
}

fn expected_bytes(spec: &JobSpec) -> Vec<u8> {
    (0..spec.n).map(|i| pattern_byte(spec.seed, i)).collect()
}

/// Engine-free runner that injects its plan's fault for each seed and
/// records every run attempt (the rerun/budget witness).
#[derive(Clone)]
struct FaultRunner {
    plan: u64,
    wedge: Duration,
    slow: Duration,
    runs: Arc<Mutex<Vec<u64>>>,
}

impl FaultRunner {
    fn new(plan: u64) -> Self {
        FaultRunner {
            plan,
            wedge: Duration::from_secs(3),
            slow: Duration::from_millis(50),
            runs: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn runs_of(&self, seed: u64) -> usize {
        self.runs
            .lock()
            .unwrap()
            .iter()
            .filter(|s| **s == seed)
            .count()
    }
}

impl JobRunner for FaultRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), String> {
        if spec.n == 0 {
            return Err("n must be positive".into());
        }
        Ok(())
    }

    fn run(&self, spec: &JobSpec, out: &Path) -> Result<(), String> {
        self.runs.lock().unwrap().push(spec.seed);
        match fault_for(self.plan, spec.seed) {
            Fault::Ok => {}
            Fault::Slow => std::thread::sleep(self.slow),
            Fault::Wedge => std::thread::sleep(self.wedge),
            Fault::Panic => panic!("injected panic for seed {}", spec.seed),
            Fault::IoError => return Err(format!("injected io error for seed {}", spec.seed)),
        }
        std::fs::write(out, expected_bytes(spec)).map_err(|e| e.to_string())
    }
}

fn spec(n: u64, seed: u64) -> JobSpec {
    JobSpec {
        n,
        x: 1,
        p_bits: 0.5f64.to_bits(),
        seed,
        alpha_bits: 0,
        ranks: 1,
        scheme_id: 2,
        engine_id: 2,
        model_id: 0,
        format_id: 1,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(tag: &str, runner: FaultRunner, tune: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut cfg = ServeConfig::new(fresh_dir(tag).join("jobs"));
    cfg.chunk_bytes = 64;
    tune(&mut cfg);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    Server::start(listener, cfg, runner).unwrap()
}

fn quick_opts(server: &Server, sp: JobSpec, out: PathBuf, attempts: u32) -> FetchOptions {
    let mut opts = FetchOptions::new(server.addr().to_string(), sp, out);
    opts.max_attempts = attempts;
    opts.backoff_initial = Duration::from_millis(5);
    opts.backoff_cap = Duration::from_millis(50);
    opts
}

/// Poll the server until `pred` holds (20 s bound, like the queue
/// tests): turns "eventually" invariants into assertions, not sleeps.
fn wait_status(server: &Server, what: &str, pred: impl Fn(&ServeStatus) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let status = server.status();
        if pred(&status) {
            return;
        }
        assert!(Instant::now() < deadline, "{what}: still {status:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn reconcile(server: &Server) {
    let stats = server.stats();
    assert_eq!(
        stats.jobs_admitted,
        stats.jobs_run + stats.jobs_failed + stats.jobs_drained,
        "admitted = run + failed + drained must hold after quiescence: {stats:?}"
    );
    assert_eq!(
        stats.rejects_by.iter().sum::<u64>(),
        stats.rejects,
        "per-code reject counters must sum to the total: {stats:?}"
    );
}

#[test]
fn panicking_runner_releases_every_waiter_and_the_pool_survives() {
    let plan = 1;
    let runner = FaultRunner::new(plan);
    let server = start("panic", runner.clone(), |cfg| {
        cfg.workers = 2;
        cfg.max_job_failures = 0; // unlimited: isolate supervision
    });
    let panic_seed = seeds_with(plan, Fault::Panic, 1)[0];
    let ok_seed = seeds_with(plan, Fault::Ok, 1)[0];
    let dir = fresh_dir("panic_out");

    // Three concurrent waiters on one panicking tuple: every one must
    // get a named job-failed with the panic message, never a hang.
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let opts = quick_opts(
                &server,
                spec(600, panic_seed),
                dir.join(format!("p{i}.bin")),
                1,
            );
            std::thread::spawn(move || fetch(&opts))
        })
        .collect();
    for h in handles {
        match h.join().unwrap().unwrap_err() {
            FetchError::Exhausted { last, .. } => {
                assert!(last.contains("job-failed"), "{last:?}");
                assert!(last.contains("injected panic"), "{last:?}");
            }
            other => panic!("expected exhausted job-failed, got {other:?}"),
        }
    }

    // The pool survived: both workers alive, and fresh work runs fine.
    let ok_handles: Vec<_> = (0..2)
        .map(|i| {
            let opts = quick_opts(
                &server,
                spec(600, ok_seed),
                dir.join(format!("ok{i}.bin")),
                8,
            );
            std::thread::spawn(move || fetch(&opts))
        })
        .collect();
    for (i, h) in ok_handles.into_iter().enumerate() {
        h.join().unwrap().unwrap();
        assert_eq!(
            std::fs::read(dir.join(format!("ok{i}.bin"))).unwrap(),
            expected_bytes(&spec(600, ok_seed))
        );
    }
    let status = server.status();
    assert_eq!(status.workers, 2, "pool must stay at configured size");
    assert_eq!(status.workers_wedged, 0);
    assert!(status.stats.worker_panics >= 1, "{:?}", status.stats);

    server.drain();
    reconcile(&server);
    server.join();
}

#[test]
fn wedged_runner_times_out_retryably_and_a_replacement_keeps_serving() {
    let plan = 2;
    let runner = FaultRunner::new(plan);
    let server = start("wedge", runner.clone(), |cfg| {
        cfg.workers = 1; // the wedge would stall the whole daemon...
        cfg.job_timeout = Some(Duration::from_millis(150));
        cfg.max_job_failures = 1;
    });
    let wedge_seed = seeds_with(plan, Fault::Wedge, 1)[0];
    let ok_seed = seeds_with(plan, Fault::Ok, 1)[0];
    let dir = fresh_dir("wedge_out");

    // The wedged run is abandoned at the deadline with the retryable
    // timeout code (budget of 1 attempt here, so it surfaces at once).
    let err = fetch(&quick_opts(
        &server,
        spec(300, wedge_seed),
        dir.join("w.bin"),
        1,
    ))
    .unwrap_err();
    match err {
        FetchError::Exhausted { last, .. } => {
            assert!(last.contains("job-timeout"), "{last:?}");
            assert!(last.contains("deadline"), "{last:?}");
        }
        other => panic!("expected exhausted job-timeout, got {other:?}"),
    }
    wait_status(&server, "replacement spawned", |s| {
        s.workers == 1 && s.workers_wedged == 1
    });

    // ...but the replacement worker serves new jobs while the wedged
    // one still sleeps (the 3 s wedge bounds this assertion).
    let started = Instant::now();
    fetch(&quick_opts(
        &server,
        spec(300, ok_seed),
        dir.join("ok.bin"),
        8,
    ))
    .unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "fresh job waited {:?} — pool was not replenished",
        started.elapsed()
    );

    // Once the wedge ends, the abandoned worker retires itself and
    // removes its (uniquely named) temp file; the pool ends at size.
    wait_status(&server, "wedged worker retired", |s| {
        s.workers == 1 && s.workers_wedged == 0
    });
    let s = server.status();
    assert_eq!(s.stats.jobs_timed_out, 1, "{:?}", s.stats);
    assert_eq!(s.cache_artifacts, 1, "only the ok artifact is cached");
    server.drain();
    reconcile(&server);
    server.join();
}

#[test]
fn io_error_runs_fail_named_and_rerun_fresh_per_client_attempt() {
    let plan = 3;
    let runner = FaultRunner::new(plan);
    let server = start("ioerr", runner.clone(), |cfg| {
        cfg.workers = 2;
        cfg.max_job_failures = 0; // unlimited: pin the rerun behavior
    });
    let io_seed = seeds_with(plan, Fault::IoError, 1)[0];
    let dir = fresh_dir("ioerr_out");
    let err = fetch(&quick_opts(
        &server,
        spec(200, io_seed),
        dir.join("a.bin"),
        2,
    ))
    .unwrap_err();
    match err {
        FetchError::Exhausted { attempts, last } => {
            assert_eq!(attempts, 2);
            assert!(last.contains("job-failed"), "{last:?}");
            assert!(last.contains("injected io error"), "{last:?}");
        }
        other => panic!("expected exhausted job-failed, got {other:?}"),
    }
    assert_eq!(
        runner.runs_of(io_seed),
        2,
        "failures are not cached: each client attempt re-runs"
    );
    assert_eq!(server.status().cache_artifacts, 0);
    server.drain();
    reconcile(&server);
    server.join();
}

#[test]
fn poison_job_budget_stops_reruns_and_names_the_exhaustion() {
    let plan = 4;
    let runner = FaultRunner::new(plan);
    let server = start("poison", runner.clone(), |cfg| {
        cfg.workers = 2;
        cfg.max_job_failures = 2;
    });
    let io_seed = seeds_with(plan, Fault::IoError, 1)[0];
    let dir = fresh_dir("poison_out");
    let err = fetch(&quick_opts(
        &server,
        spec(200, io_seed),
        dir.join("a.bin"),
        6,
    ))
    .unwrap_err();
    match err {
        FetchError::Exhausted { attempts, last } => {
            assert_eq!(attempts, 6);
            assert!(last.contains("failure budget"), "{last:?}");
        }
        other => panic!("expected exhausted budget rejects, got {other:?}"),
    }
    assert_eq!(
        runner.runs_of(io_seed),
        2,
        "a poison job must stop consuming workers at the budget"
    );
    server.drain();
    reconcile(&server);
    server.join();
}

#[test]
fn chaos_matrix_every_client_ends_with_artifact_or_named_reject() {
    let plan = 5;
    let runner = FaultRunner::new(plan);
    let mut runner_cfg = runner.clone();
    runner_cfg.wedge = Duration::from_secs(1);
    let server = start("matrix", runner_cfg, |cfg| {
        cfg.workers = 3;
        cfg.queue_cap = 64;
        cfg.job_timeout = Some(Duration::from_millis(250));
        cfg.max_job_failures = 2;
    });
    let dir = fresh_dir("matrix_out");
    let faults = [
        Fault::Ok,
        Fault::Panic,
        Fault::Wedge,
        Fault::IoError,
        Fault::Slow,
    ];
    let mut handles = Vec::new();
    for fault in faults {
        for seed in seeds_with(plan, fault, 2) {
            for client in 0..3 {
                let opts = quick_opts(
                    &server,
                    spec(1000, seed),
                    dir.join(format!("{seed}_{client}.bin")),
                    6,
                );
                handles.push((
                    fault,
                    seed,
                    client,
                    std::thread::spawn(move || fetch(&opts)),
                ));
            }
        }
    }
    for (fault, seed, client, handle) in handles {
        let result = handle.join().unwrap();
        match fault {
            Fault::Ok | Fault::Slow => {
                result.unwrap_or_else(|e| panic!("seed {seed} client {client}: {e}"));
                assert_eq!(
                    std::fs::read(dir.join(format!("{seed}_{client}.bin"))).unwrap(),
                    expected_bytes(&spec(1000, seed)),
                    "seed {seed} client {client}"
                );
            }
            Fault::Panic | Fault::Wedge | Fault::IoError => {
                let err = result.expect_err("faulty tuple cannot produce an artifact");
                let named = match &err {
                    FetchError::Exhausted { last, .. } => {
                        last.contains("job-failed") || last.contains("job-timeout")
                    }
                    _ => false,
                };
                assert!(
                    named,
                    "seed {seed} client {client}: unnamed failure {err:?}"
                );
            }
        }
    }
    // The pool converges back to its configured size once the wedges
    // (≤ 1 s each) expire and their workers retire.
    wait_status(&server, "pool back at size", |s| {
        s.workers == 3 && s.workers_wedged == 0 && s.running == 0 && s.queued == 0
    });
    // The wire status agrees with the in-process snapshot at quiescence.
    let wire = pa_net::serve::status(&server.addr().to_string(), Duration::from_secs(10)).unwrap();
    let local = server.status();
    assert_eq!(wire.stats, local.stats);
    assert_eq!(wire.cache_bytes, local.cache_bytes);
    assert_eq!(wire.cache_artifacts, local.cache_artifacts);
    server.drain();
    reconcile(&server);
    server.join();
}

#[test]
fn cache_quota_evicts_lru_and_evicted_tuples_rerun_on_demand() {
    let plan = 6;
    let runner = FaultRunner::new(plan);
    let server = start("evict", runner.clone(), |cfg| {
        cfg.workers = 1;
        cfg.cache_bytes = 2500; // holds two 1000-byte artifacts
    });
    let seeds = seeds_with(plan, Fault::Ok, 3);
    let dir = fresh_dir("evict_out");
    for (i, seed) in seeds.iter().enumerate() {
        fetch(&quick_opts(
            &server,
            spec(1000, *seed),
            dir.join(format!("{i}.bin")),
            8,
        ))
        .unwrap();
    }
    // Publishing the third artifact pushed the cache to 3000 bytes; the
    // least-recently-streamed one (the first) was evicted to fit.
    let status = server.status();
    assert_eq!(status.cache_artifacts, 2, "{status:?}");
    assert_eq!(status.cache_bytes, 2000);
    assert_eq!(status.stats.jobs_evicted, 1);
    assert_eq!(runner.runs_of(seeds[0]), 1);
    // An evicted tuple is simply re-run on its next submit.
    fetch(&quick_opts(
        &server,
        spec(1000, seeds[0]),
        dir.join("again.bin"),
        8,
    ))
    .unwrap();
    assert_eq!(
        std::fs::read(dir.join("again.bin")).unwrap(),
        expected_bytes(&spec(1000, seeds[0]))
    );
    assert_eq!(runner.runs_of(seeds[0]), 2);
    assert_eq!(server.status().cache_artifacts, 2);
    server.drain();
    reconcile(&server);
    server.join();
}

/// A runner that must never run: restart recovery serves from the
/// rebuilt cache, not from re-generation.
struct MustNotRun;

impl JobRunner for MustNotRun {
    fn validate(&self, _spec: &JobSpec) -> Result<(), String> {
        Ok(())
    }
    fn run(&self, spec: &JobSpec, _out: &Path) -> Result<(), String> {
        Err(format!(
            "seed {} re-ran after restart — the recovered cache was ignored",
            spec.seed
        ))
    }
}

#[test]
fn restart_on_same_jobs_dir_recovers_cache_and_cleans_tmp_litter() {
    let plan = 7;
    let runner = FaultRunner::new(plan);
    let ok_seed = seeds_with(plan, Fault::Ok, 1)[0];
    let sp = spec(4096, ok_seed);
    let jobs_dir = fresh_dir("restart").join("jobs");
    let dir = fresh_dir("restart_out");

    // First daemon caches one artifact, then goes away. (The crash
    // aspect — SIGKILL mid-stream — is exercised end-to-end by ci.sh;
    // here the equivalent on-disk state is staged directly.)
    {
        let mut cfg = ServeConfig::new(&jobs_dir);
        cfg.chunk_bytes = 64;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::start(listener, cfg, runner).unwrap();
        fetch(&quick_opts(&server, sp, dir.join("first.bin"), 8)).unwrap();
        server.drain();
        server.join();
    }
    // Stale temp litter, as a crashed run would leave behind.
    std::fs::write(jobs_dir.join("deadbeefdeadbeef.3.tmp"), b"junk").unwrap();
    std::fs::write(
        jobs_dir.join(format!("{:016x}.9.tmp", sp.job_id())),
        b"junk",
    )
    .unwrap();

    // Second daemon on the same directory, with a runner that fails any
    // re-run: serving must come from the recovered cache alone.
    let mut cfg = ServeConfig::new(&jobs_dir);
    cfg.chunk_bytes = 64;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::start(listener, cfg, MustNotRun).unwrap();
    let status = server.status();
    assert_eq!(status.stats.jobs_recovered, 1, "{status:?}");
    assert_eq!(status.stats.tmp_cleaned, 2);
    assert_eq!(status.cache_artifacts, 1);
    assert_eq!(status.cache_bytes, 4096);

    // Fresh fetch streams the recovered artifact byte-identically...
    fetch(&quick_opts(&server, sp, dir.join("second.bin"), 1)).unwrap();
    assert_eq!(
        std::fs::read(dir.join("second.bin")).unwrap(),
        std::fs::read(dir.join("first.bin")).unwrap()
    );
    // ...and an interrupted client resumes over it with the
    // whole-artifact checksum intact.
    let prefix = std::fs::read(dir.join("first.bin")).unwrap()[..1000].to_vec();
    std::fs::write(dir.join("resumed.bin"), &prefix).unwrap();
    let mut opts = quick_opts(&server, sp, dir.join("resumed.bin"), 1);
    opts.resume = true;
    let report = fetch(&opts).unwrap();
    assert_eq!(report.resumed_from, 1000);
    assert_eq!(
        std::fs::read(dir.join("resumed.bin")).unwrap(),
        std::fs::read(dir.join("first.bin")).unwrap()
    );
    // The litter is gone and nothing new appeared.
    let leftovers: Vec<String> = std::fs::read_dir(&jobs_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "stale temp files survived: {leftovers:?}"
    );

    server.drain();
    let stats = server.join();
    assert_eq!(stats.jobs_run, 0, "the recovered cache served everything");
}
