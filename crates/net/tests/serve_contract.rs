//! Protocol conformance for the serve daemon: every malformed,
//! hostile, or stale input gets a *named* error over the wire (or a
//! bounded-time close), never a hang and never a crash.
//!
//! Style follows `transport_contract.rs`: a synthetic runner keeps the
//! engines out of the picture so the tests pin the *protocol*, and
//! every blocking read carries a socket timeout so a regression shows
//! up as a failed assertion, not a stuck CI job.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pa_net::serve::proto::{
    read_reply, write_accept, write_submit, ServeMsg, KIND_DRAIN_REQ, KIND_SUBMIT,
};
use pa_net::serve::{
    fetch, FetchError, FetchOptions, JobRunner, JobSpec, RejectCode, ServeConfig, Server,
    MAX_REQUEST_FRAME,
};

/// A runner whose artifact is `n` bytes of a seed-keyed pattern —
/// deterministic, instant, and engine-free.
struct ByteRunner;

fn pattern_byte(seed: u64, i: u64) -> u8 {
    (seed.wrapping_add(i).wrapping_mul(0x9e37_79b9)) as u8
}

fn expected_bytes(spec: &JobSpec) -> Vec<u8> {
    (0..spec.n).map(|i| pattern_byte(spec.seed, i)).collect()
}

impl JobRunner for ByteRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), String> {
        if spec.n == 0 {
            return Err("n must be positive".into());
        }
        Ok(())
    }

    fn run(&self, spec: &JobSpec, out: &Path) -> Result<(), String> {
        if spec.x == 666 {
            return Err("synthetic runner failure (x = 666)".into());
        }
        let bytes = expected_bytes(spec);
        std::fs::write(out, bytes).map_err(|e| e.to_string())
    }
}

fn spec(n: u64, seed: u64) -> JobSpec {
    JobSpec {
        n,
        x: 1,
        p_bits: 0.5f64.to_bits(),
        seed,
        alpha_bits: 0,
        ranks: 1,
        scheme_id: 2,
        engine_id: 2,
        model_id: 0,
        format_id: 1,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve_contract_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(tag: &str, tune: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut cfg = ServeConfig::new(temp_dir(tag).join("jobs"));
    cfg.chunk_bytes = 64; // many chunks even for small artifacts
    tune(&mut cfg);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    Server::start(listener, cfg, ByteRunner).unwrap()
}

/// Connect with a client-side read timeout so no test can hang.
fn connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Send raw bytes as the request and read the server's single reply.
fn roundtrip_raw(server: &Server, bytes: &[u8]) -> ServeMsg {
    let mut s = connect(server);
    s.write_all(bytes).unwrap();
    read_reply(&mut s).expect("server must answer with a parseable reply")
}

fn expect_reject(msg: ServeMsg, code: RejectCode, needle: &str) {
    match msg {
        ServeMsg::Reject { code: got, msg, .. } => {
            assert_eq!(got, code, "reject message: {msg}");
            assert!(
                msg.contains(needle),
                "reject detail {msg:?} missing {needle:?}"
            );
        }
        other => panic!("expected REJECT({code:?}), got {other:?}"),
    }
}

fn shutdown(server: Server) {
    server.drain();
    server.join();
}

#[test]
fn happy_path_streams_the_exact_artifact() {
    let server = start_server("happy", |_| {});
    let out = temp_dir("happy_out").join("a.bin");
    let report = fetch(&FetchOptions::new(
        server.addr().to_string(),
        spec(1000, 42),
        &out,
    ))
    .unwrap();
    assert_eq!(report.total, 1000);
    assert_eq!(report.transferred, 1000);
    assert_eq!(report.resumed_from, 0);
    assert_eq!(
        std::fs::read(&out).unwrap(),
        expected_bytes(&spec(1000, 42))
    );
    shutdown(server);
}

#[test]
fn garbage_length_prefix_gets_a_named_reject_then_close() {
    let server = start_server("garbage_len", |_| {});
    // A length prefix far beyond the request cap: rejected before any
    // allocation, with the limit named.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    wire.push(KIND_SUBMIT);
    let mut s = connect(&server);
    s.write_all(&wire).unwrap();
    let reply = read_reply(&mut s).unwrap();
    expect_reject(reply, RejectCode::BadRequest, "bad frame length");
    // And the connection is closed, not left dangling.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap(), 0);
    shutdown(server);
}

#[test]
fn zero_length_prefix_is_rejected() {
    let server = start_server("zero_len", |_| {});
    let reply = roundtrip_raw(&server, &0u32.to_le_bytes());
    expect_reject(reply, RejectCode::BadRequest, "bad frame length");
    shutdown(server);
}

#[test]
fn oversized_request_frame_is_rejected_by_the_request_cap() {
    let server = start_server("oversized", |_| {});
    // A frame that would be legal transport (< 256 MiB) but exceeds the
    // request cap: the serve layer must turn it away by length alone.
    let len = (MAX_REQUEST_FRAME + 1) as u32;
    let mut wire = Vec::new();
    wire.extend_from_slice(&len.to_le_bytes());
    wire.push(KIND_SUBMIT);
    wire.extend_from_slice(&vec![0u8; MAX_REQUEST_FRAME]);
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadRequest, "bad frame length");
    shutdown(server);
}

#[test]
fn truncated_submit_payload_is_rejected_with_the_expected_size() {
    let server = start_server("truncated", |_| {});
    // Well-formed frame, wrong payload size for SUBMIT.
    let mut wire = Vec::new();
    wire.extend_from_slice(&11u32.to_le_bytes()); // kind + 10 bytes
    wire.push(KIND_SUBMIT);
    wire.extend_from_slice(&[0u8; 10]);
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadRequest, "64 bytes");
    shutdown(server);
}

#[test]
fn wrong_magic_is_named() {
    let server = start_server("magic", |_| {});
    let mut wire = Vec::new();
    write_submit(&mut wire, &spec(10, 0), 0).unwrap();
    wire[5] ^= 0xff; // first magic byte (after len:4 kind:1)
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadRequest, "magic");
    shutdown(server);
}

#[test]
fn unknown_protocol_version_gets_unsupported_version() {
    let server = start_server("version", |_| {});
    let mut wire = Vec::new();
    write_submit(&mut wire, &spec(10, 0), 0).unwrap();
    wire[9] = 99; // version word (after len:4 kind:1 magic:4)
    let reply = roundtrip_raw(&server, &wire);
    match reply {
        ServeMsg::Reject { code, msg, .. } => {
            assert_eq!(code, RejectCode::UnsupportedVersion);
            assert!(msg.contains("v99"), "{msg:?}");
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    shutdown(server);
}

#[test]
fn unknown_request_kind_is_rejected() {
    let server = start_server("unknown_kind", |_| {});
    let wire = [2u8, 0, 0, 0, 0x7f, 0]; // len 2, kind 0x7f, 1 payload byte
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadRequest, "unknown request kind");
    shutdown(server);
}

#[test]
fn reply_kind_sent_as_request_is_rejected() {
    // ACCEPT is a server→client kind; a client sending it is as
    // unknown to the request parser as any other stray byte.
    let server = start_server("reply_kind", |_| {});
    let mut wire = Vec::new();
    write_accept(&mut wire, 1, 2, 3).unwrap();
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadRequest, "unknown request kind");
    shutdown(server);
}

#[test]
fn half_open_connection_is_dropped_after_the_request_timeout() {
    let server = start_server("half_open", |cfg| {
        cfg.request_timeout = Duration::from_millis(200);
    });
    // Connect and send nothing: the server must hang up on its own.
    let mut s = connect(&server);
    let started = Instant::now();
    let mut buf = [0u8; 1];
    let n = s.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server must close a silent connection");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "half-open close took {:?}",
        started.elapsed()
    );
    // The daemon is still healthy afterwards.
    let out = temp_dir("half_open_out").join("a.bin");
    fetch(&FetchOptions::new(
        server.addr().to_string(),
        spec(100, 1),
        &out,
    ))
    .unwrap();
    shutdown(server);
}

#[test]
fn runner_validation_failure_is_a_bad_request_with_the_runners_words() {
    let server = start_server("validate", |_| {});
    let mut wire = Vec::new();
    write_submit(&mut wire, &spec(0, 0), 0).unwrap();
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadRequest, "n must be positive");
    shutdown(server);
}

#[test]
fn failed_run_rejects_with_job_failed_and_is_not_cached() {
    let server = start_server("job_failed", |_| {});
    let mut bad = spec(100, 3);
    bad.x = 666; // ByteRunner fails this at run time, not validation
    let out = temp_dir("job_failed_out").join("a.bin");
    // The client retries job-failed through its bounded attempt budget
    // (failure is not cached server-side); with a budget of one, the
    // named error surfaces immediately.
    let mut opts = FetchOptions::new(server.addr().to_string(), bad, &out);
    opts.max_attempts = 1;
    let err = fetch(&opts).unwrap_err();
    match err {
        FetchError::Exhausted { attempts, last } => {
            assert_eq!(attempts, 1);
            assert!(last.contains("job-failed"), "{last:?}");
            assert!(last.contains("synthetic runner failure"), "{last:?}");
        }
        other => panic!("expected exhausted job-failed retries, got {other:?}"),
    }
    // The failure was not cached: the *same* failing spec fails again
    // with the same named error from a fresh run, not a stale cache.
    let err = fetch(&opts).unwrap_err();
    match err {
        FetchError::Exhausted { last, .. } => {
            assert!(last.contains("synthetic runner failure"), "{last:?}");
        }
        other => panic!("expected exhausted job-failed retries, got {other:?}"),
    }
    assert_eq!(
        server.stats().jobs_failed,
        2,
        "each submit must have triggered a fresh failing run"
    );
    shutdown(server);
}

#[test]
fn status_req_answers_with_a_snapshot_and_truncated_one_is_rejected() {
    use pa_net::serve::proto::KIND_STATUS_REQ;
    let server = start_server("status", |_| {});
    let out = temp_dir("status_out").join("a.bin");
    fetch(&FetchOptions::new(
        server.addr().to_string(),
        spec(250, 21),
        &out,
    ))
    .unwrap();
    let status = pa_net::serve::status(&server.addr().to_string(), Duration::from_secs(10))
        .expect("status over the wire");
    assert_eq!(status.queued, 0);
    assert_eq!(status.running, 0);
    assert_eq!(status.cache_artifacts, 1);
    assert_eq!(status.cache_bytes, 250);
    assert_eq!(status.stats.jobs_run, 1);
    assert!(!status.draining);
    assert!(
        status.active_conns >= 1,
        "the status connection counts itself"
    );
    assert_eq!(status.workers, 2, "default pool size");
    assert_eq!(status.workers_wedged, 0);

    let wire = [3u8, 0, 0, 0, KIND_STATUS_REQ, 1, 2]; // 2-byte payload, need 8
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadRequest, "8 bytes");
    shutdown(server);
}

#[test]
fn resume_offset_beyond_the_artifact_is_a_bad_offset() {
    let server = start_server("bad_offset", |_| {});
    let out = temp_dir("bad_offset_out").join("a.bin");
    let sp = spec(500, 9);
    fetch(&FetchOptions::new(server.addr().to_string(), sp, &out)).unwrap();
    // Raw submit with offset beyond the 500-byte artifact.
    let mut wire = Vec::new();
    write_submit(&mut wire, &sp, 501).unwrap();
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadOffset, "beyond artifact end");
    shutdown(server);
}

#[test]
fn resume_from_every_offset_reconstructs_the_artifact() {
    let server = start_server("resume", |_| {});
    let sp = spec(777, 5);
    let expect = expected_bytes(&sp);
    for cut in [0u64, 1, 63, 64, 400, 776, 777] {
        let out = temp_dir("resume_out").join(format!("cut{cut}.bin"));
        // Simulate a crashed earlier fetch that got exactly `cut` bytes.
        std::fs::write(&out, &expect[..cut as usize]).unwrap();
        let mut opts = FetchOptions::new(server.addr().to_string(), sp, &out);
        opts.resume = true;
        let report = fetch(&opts).unwrap();
        assert_eq!(report.resumed_from, cut);
        assert_eq!(report.transferred, 777 - cut);
        assert_eq!(std::fs::read(&out).unwrap(), expect, "cut at {cut}");
    }
    shutdown(server);
}

#[test]
fn resume_over_a_corrupt_prefix_fails_the_checksum_loudly() {
    let server = start_server("corrupt", |_| {});
    let sp = spec(300, 11);
    let mut prefix = expected_bytes(&sp)[..100].to_vec();
    prefix[50] ^= 0xff;
    let out = temp_dir("corrupt_out").join("a.bin");
    std::fs::write(&out, &prefix).unwrap();
    let mut opts = FetchOptions::new(server.addr().to_string(), sp, &out);
    opts.resume = true;
    let err = fetch(&opts).unwrap_err();
    assert!(
        matches!(err, FetchError::ChecksumMismatch { .. }),
        "expected checksum mismatch, got {err:?}"
    );
    shutdown(server);
}

#[test]
fn drain_req_with_wrong_payload_size_is_rejected() {
    let server = start_server("drain_bad", |_| {});
    let wire = [3u8, 0, 0, 0, KIND_DRAIN_REQ, 1, 2]; // 2-byte payload, need 8
    let reply = roundtrip_raw(&server, &wire);
    expect_reject(reply, RejectCode::BadRequest, "8 bytes");
    shutdown(server);
}

#[test]
fn fetch_gives_up_with_exhausted_when_nobody_listens() {
    // Bind-then-drop to get a port with no listener.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let out = temp_dir("nobody_out").join("a.bin");
    let mut opts = FetchOptions::new(addr, spec(10, 0), &out);
    opts.max_attempts = 2;
    opts.backoff_initial = Duration::from_millis(1);
    opts.backoff_cap = Duration::from_millis(2);
    opts.connect_timeout = Duration::from_millis(200);
    let err = fetch(&opts).unwrap_err();
    match err {
        FetchError::Exhausted { attempts, last } => {
            assert_eq!(attempts, 2);
            assert!(last.contains("connect"), "{last:?}");
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
}
