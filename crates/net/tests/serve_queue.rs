//! Queue backpressure and drain semantics for the serve daemon.
//!
//! A gated runner (jobs block until the test opens a gate) makes
//! admission and rejection deterministic: the tests sequence
//! submissions on the `jobs_admitted` counter and on the runner's
//! entered signal, never on sleeps, so every rejection asserted here
//! is forced — not a lucky race.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pa_net::serve::{
    fetch, FetchError, FetchOptions, JobRunner, JobSpec, RejectCode, ServeConfig, Server,
};

/// Runner whose jobs park on a gate until the test releases them, and
/// which records the order jobs entered `run` (the FIFO witness).
#[derive(Clone)]
struct GatedRunner {
    state: Arc<GateState>,
}

struct GateState {
    open: Mutex<bool>,
    entered: Mutex<Vec<u64>>, // seeds, in execution order
    cond: Condvar,
}

impl GatedRunner {
    fn new() -> Self {
        GatedRunner {
            state: Arc::new(GateState {
                open: Mutex::new(false),
                entered: Mutex::new(Vec::new()),
                cond: Condvar::new(),
            }),
        }
    }

    fn open_gate(&self) {
        *self.state.open.lock().unwrap() = true;
        self.state.cond.notify_all();
    }

    /// Block until `k` jobs have entered `run`.
    fn wait_entered(&self, k: usize) {
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut entered = self.state.entered.lock().unwrap();
        while entered.len() < k {
            assert!(Instant::now() < deadline, "only {} entered", entered.len());
            let (guard, _) = self
                .state
                .cond
                .wait_timeout(entered, Duration::from_millis(50))
                .unwrap();
            entered = guard;
        }
    }

    fn execution_order(&self) -> Vec<u64> {
        self.state.entered.lock().unwrap().clone()
    }
}

impl JobRunner for GatedRunner {
    fn validate(&self, _spec: &JobSpec) -> Result<(), String> {
        Ok(())
    }

    fn run(&self, spec: &JobSpec, out: &Path) -> Result<(), String> {
        {
            let mut entered = self.state.entered.lock().unwrap();
            entered.push(spec.seed);
            self.state.cond.notify_all();
        }
        let mut open = self.state.open.lock().unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while !*open {
            assert!(Instant::now() < deadline, "gate never opened");
            let (guard, _) = self
                .state
                .cond
                .wait_timeout(open, Duration::from_millis(50))
                .unwrap();
            open = guard;
        }
        drop(open);
        std::fs::write(out, spec.seed.to_le_bytes()).map_err(|e| e.to_string())
    }
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        n: 64,
        x: 1,
        p_bits: 0.5f64.to_bits(),
        seed,
        alpha_bits: 0,
        ranks: 1,
        scheme_id: 2,
        engine_id: 2,
        model_id: 0,
        format_id: 1,
    }
}

/// Per-tag scratch dir; created on demand, wiped only by `fresh_dir`.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve_queue_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Like `temp_dir` but guaranteed empty — use once per test, at setup.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve_queue_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(tag: &str, queue_cap: usize, runner: GatedRunner) -> Server {
    let mut cfg = ServeConfig::new(fresh_dir(tag).join("jobs"));
    cfg.queue_cap = queue_cap;
    cfg.workers = 1; // serial execution makes order observable
    cfg.retry_after = Duration::from_millis(250);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    Server::start(listener, cfg, runner).unwrap()
}

/// Submit `spec` on a background thread via a full fetch (waits for the
/// artifact or a rejection).
fn fetch_in_background(
    server: &Server,
    sp: JobSpec,
    tag: &str,
) -> std::thread::JoinHandle<Result<Vec<u8>, FetchError>> {
    let out = temp_dir(tag).join(format!("{}.bin", sp.seed));
    let mut opts = FetchOptions::new(server.addr().to_string(), sp, &out);
    opts.max_attempts = 1; // rejections must surface, not be retried away
    std::thread::spawn(move || fetch(&opts).map(|_| std::fs::read(&opts.out).unwrap()))
}

/// Block until the daemon has admitted `k` jobs to its queue.
fn wait_admitted(server: &Server, k: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.stats().jobs_admitted < k {
        assert!(
            Instant::now() < deadline,
            "only {} admitted",
            server.stats().jobs_admitted
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn full_queue_rejects_with_the_configured_retry_after() {
    let runner = GatedRunner::new();
    let server = start("full", 1, runner.clone());
    // Job 1 occupies the single worker; job 2 fills the 1-slot queue.
    let a = fetch_in_background(&server, spec(1), "full");
    wait_admitted(&server, 1);
    runner.wait_entered(1); // worker popped job 1: queue is empty again
    let b = fetch_in_background(&server, spec(2), "full");
    wait_admitted(&server, 2); // job 2 sits in the queue
                               // Job 3 must bounce — deterministically, with the server's hint.
    let out = temp_dir("full_rej").join("c.bin");
    let mut opts = FetchOptions::new(server.addr().to_string(), spec(3), &out);
    opts.max_attempts = 1;
    match fetch(&opts).unwrap_err() {
        FetchError::Exhausted { last, .. } => {
            // QueueFull is retryable, so a budget of 1 ends in Exhausted
            // wrapping the queue-full rejection.
            assert!(last.contains("queue-full"), "{last:?}");
        }
        other => panic!("expected exhausted-after-queue-full, got {other:?}"),
    }
    // The server's retry hint is the configured one: check it raw.
    {
        use pa_net::serve::proto::{read_reply, write_submit, ServeMsg};
        let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write_submit(&mut s, &spec(4), 0).unwrap();
        match read_reply(&mut s).unwrap() {
            ServeMsg::Reject {
                code, retry_after, ..
            } => {
                assert_eq!(code, RejectCode::QueueFull);
                assert_eq!(retry_after, Duration::from_millis(250));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }
    runner.open_gate();
    assert_eq!(a.join().unwrap().unwrap(), 1u64.to_le_bytes());
    assert_eq!(b.join().unwrap().unwrap(), 2u64.to_le_bytes());
    server.drain();
    let stats = server.join();
    assert_eq!(stats.jobs_run, 2);
    assert!(stats.rejects >= 2, "both bounced submits counted");
}

#[test]
fn queue_full_client_retries_until_capacity_frees_up() {
    let runner = GatedRunner::new();
    let server = start("retry", 1, runner.clone());
    let a = fetch_in_background(&server, spec(10), "retry");
    wait_admitted(&server, 1);
    runner.wait_entered(1);
    let b = fetch_in_background(&server, spec(11), "retry");
    wait_admitted(&server, 2);
    // This client keeps retrying QueueFull; once the gate opens and the
    // pipeline moves, a later attempt is admitted and completes.
    let out = temp_dir("retry_c").join("c.bin");
    let mut opts = FetchOptions::new(server.addr().to_string(), spec(12), &out);
    opts.max_attempts = 50;
    opts.backoff_initial = Duration::from_millis(5);
    opts.backoff_cap = Duration::from_millis(50);
    let c = std::thread::spawn(move || fetch(&opts));
    std::thread::sleep(Duration::from_millis(100)); // let it bounce at least once
    runner.open_gate();
    let report = c.join().unwrap().unwrap();
    assert_eq!(report.total, 8);
    assert!(report.attempts >= 1);
    a.join().unwrap().unwrap();
    b.join().unwrap().unwrap();
    server.drain();
    server.join();
}

#[test]
fn admission_is_fifo() {
    let runner = GatedRunner::new();
    let server = start("fifo", 8, runner.clone());
    // First job occupies the worker so the rest stack in the queue in
    // admission order.
    let first = fetch_in_background(&server, spec(100), "fifo");
    wait_admitted(&server, 1);
    runner.wait_entered(1);
    let mut rest = Vec::new();
    for (i, seed) in [101u64, 102, 103, 104].into_iter().enumerate() {
        rest.push(fetch_in_background(&server, spec(seed), "fifo"));
        wait_admitted(&server, 2 + i as u64);
    }
    runner.open_gate();
    first.join().unwrap().unwrap();
    for h in rest {
        h.join().unwrap().unwrap();
    }
    assert_eq!(
        runner.execution_order(),
        vec![100, 101, 102, 103, 104],
        "jobs must execute in admission order"
    );
    server.drain();
    server.join();
}

#[test]
fn graceful_drain_finishes_in_flight_and_names_the_queued_casualties() {
    let runner = GatedRunner::new();
    let server = start("drain", 8, runner.clone());
    let running = fetch_in_background(&server, spec(201), "drain");
    wait_admitted(&server, 1);
    runner.wait_entered(1);
    let queued_a = fetch_in_background(&server, spec(202), "drain");
    wait_admitted(&server, 2);
    let queued_b = fetch_in_background(&server, spec(203), "drain");
    wait_admitted(&server, 3);

    // Drain over the wire, like `pagen drain` does.
    let (running_count, dropped) =
        pa_net::serve::drain(&server.addr().to_string(), Duration::from_secs(10)).unwrap();
    assert_eq!(running_count, 1);
    assert_eq!(dropped, 2);

    // The queued jobs' waiters get the named drain rejection...
    for handle in [queued_a, queued_b] {
        match handle.join().unwrap().unwrap_err() {
            FetchError::Rejected { code, msg, .. } => {
                assert_eq!(code, RejectCode::Draining);
                assert!(msg.contains("drained before start"), "{msg:?}");
            }
            other => panic!("expected Draining rejection, got {other:?}"),
        }
    }
    // ...new submissions are turned away...
    let out = temp_dir("drain_late").join("late.bin");
    let mut opts = FetchOptions::new(server.addr().to_string(), spec(204), &out);
    opts.max_attempts = 1;
    match fetch(&opts).unwrap_err() {
        FetchError::Rejected { code, .. } => assert_eq!(code, RejectCode::Draining),
        other => panic!("expected Draining, got {other:?}"),
    }
    // ...and the in-flight job still finishes and streams.
    runner.open_gate();
    assert_eq!(running.join().unwrap().unwrap(), 201u64.to_le_bytes());

    let stats = server.join();
    assert_eq!(stats.jobs_run, 1);
    assert_eq!(stats.jobs_drained, 2);
    assert_eq!(
        runner.execution_order(),
        vec![201],
        "drained jobs never ran"
    );
}

#[test]
fn drain_is_idempotent_and_join_returns_after_drain() {
    let runner = GatedRunner::new();
    runner.open_gate(); // jobs run straight through
    let server = start("idem", 4, runner);
    let addr = server.addr().to_string();
    let out = temp_dir("idem_out").join("a.bin");
    fetch(&FetchOptions::new(&addr, spec(301), &out)).unwrap();
    let (r1, d1) = pa_net::serve::drain(&addr, Duration::from_secs(10)).unwrap();
    assert_eq!((r1, d1), (0, 0));
    // A second drain must not wedge or double-count (the accept loop may
    // already be gone, so connection failures are acceptable here).
    if let Ok((r2, d2)) = pa_net::serve::drain(&addr, Duration::from_secs(2)) {
        assert_eq!((r2, d2), (0, 0));
    }
    let stats = server.join();
    assert_eq!(stats.jobs_run, 1);
    assert_eq!(stats.jobs_drained, 0);
}

#[test]
fn connection_cap_rejects_with_retryable_overloaded() {
    let runner = GatedRunner::new();
    let server = {
        let mut cfg = ServeConfig::new(fresh_dir("cap").join("jobs"));
        cfg.queue_cap = 8;
        cfg.workers = 1;
        cfg.max_conns = 1;
        cfg.retry_after = Duration::from_millis(250);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        Server::start(listener, cfg, runner.clone()).unwrap()
    };
    let a = fetch_in_background(&server, spec(500), "cap");
    wait_admitted(&server, 1);
    runner.wait_entered(1);
    // The one connection slot is held by the waiting fetch; a second
    // connection bounces with the named retryable code and the
    // configured hint, before its request is even read.
    {
        use pa_net::serve::proto::{read_reply, write_submit, ServeMsg};
        let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write_submit(&mut s, &spec(501), 0).unwrap();
        match read_reply(&mut s).unwrap() {
            ServeMsg::Reject {
                code,
                retry_after,
                msg,
            } => {
                assert_eq!(code, RejectCode::Overloaded);
                assert!(code.is_retryable());
                assert_eq!(retry_after, Duration::from_millis(250));
                assert!(msg.contains("connection limit"), "{msg:?}");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.status().stats.rejects_for(RejectCode::Overloaded) < 1 {
        assert!(Instant::now() < deadline, "overloaded reject never counted");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.status().active_conns, 1);
    // A patient client rides the cap out: the slot frees once the gate
    // opens and the first stream completes.
    let out = temp_dir("cap_c").join("c.bin");
    let mut opts = FetchOptions::new(server.addr().to_string(), spec(502), &out);
    opts.max_attempts = 100;
    opts.backoff_initial = Duration::from_millis(5);
    opts.backoff_cap = Duration::from_millis(50);
    let c = std::thread::spawn(move || fetch(&opts));
    runner.open_gate();
    a.join().unwrap().unwrap();
    c.join().unwrap().unwrap();
    server.drain();
    server.join();
}

#[test]
fn concurrent_submits_of_one_tuple_coalesce_to_a_single_run() {
    let runner = GatedRunner::new();
    let server = start("coalesce", 8, runner.clone());
    let sp = spec(400);
    let handles: Vec<_> = (0..6)
        .map(|_| fetch_in_background(&server, sp, "coalesce"))
        .collect();
    runner.wait_entered(1);
    runner.open_gate();
    for h in handles {
        assert_eq!(h.join().unwrap().unwrap(), 400u64.to_le_bytes());
    }
    server.drain();
    let stats = server.join();
    assert_eq!(stats.jobs_run, 1, "one run for six submits");
    assert_eq!(stats.jobs_admitted, 1);
    assert_eq!(stats.jobs_coalesced, 5);
    assert_eq!(runner.execution_order(), vec![400]);
}
