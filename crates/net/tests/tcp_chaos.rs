//! Chaos over real sockets: the PR-3 fault matrix replayed with
//! `FaultTransport<TcpTransport>` — every rank an OS-level socket
//! endpoint, every engine message crossing the wire as bytes *and* then
//! being delayed, reordered, duplicated, or dropped-and-recovered by the
//! seeded fault layer. The invariant is the same as the in-process chaos
//! suite: the merged edge set must reproduce the fault-free FNV-1a
//! oracles bit-for-bit.

use std::time::Duration;

use pa_core::par::{generate_rank_streaming, generate_rank_x1_streaming, Msg, Msg1};
use pa_core::partition::{self, Scheme};
use pa_core::{GenOptions, PaConfig};
use pa_graph::EdgeList;
use pa_mpsim::{FaultPlan, FaultTransport, Transport, Wire};
use pa_net::{TcpConfig, TcpTransport};

/// The PR-1 fingerprints of `PaConfig::new(3000, x).with_seed(41)`.
const ORACLE_X1: u64 = 0xdefa6458a590e3ba;
const ORACLE_X4: u64 = 0x66b9ce422f65dc31;

fn fnv1a(edges: &EdgeList) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for (u, v) in edges.iter() {
        for b in u.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Small buffers for plentiful packets (more fault opportunities) and a
/// watchdog generous enough that recovering plans never trip it.
fn chaos_opts() -> GenOptions {
    GenOptions {
        buffer_capacity: 32,
        service_interval: 16,
        ..GenOptions::default()
    }
    .with_stall_timeout(Duration::from_secs(120))
}

/// Even seeds run the light profile, odd the aggressive one.
fn plan_for(fault_seed: u64) -> FaultPlan {
    if fault_seed.is_multiple_of(2) {
        FaultPlan::light(fault_seed)
    } else {
        FaultPlan::aggressive(fault_seed)
    }
}

/// One thread per rank over a loopback TCP world, each wrapping its
/// wired transport in the fault layer before handing it to the engine.
fn run_faulty_world<M: Wire + Clone + Send + 'static>(
    world: usize,
    plan: FaultPlan,
    rank_fn: impl Fn(usize, &mut FaultTransport<M, TcpTransport<M>>) -> EdgeList + Send + Sync,
) -> Vec<EdgeList> {
    let ranks = TcpConfig::local_world(world).expect("loopback world");
    let mut shards: Vec<Option<EdgeList>> = (0..world).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|(cfg, listener)| {
                let rank_fn = &rank_fn;
                let rank = cfg.rank;
                s.spawn(move || {
                    let inner: TcpTransport<M> =
                        TcpTransport::connect_with_listener(cfg, listener).unwrap();
                    let mut t = FaultTransport::new(inner, plan);
                    let shard = rank_fn(rank, &mut t);
                    t.barrier();
                    (rank, shard)
                })
            })
            .collect();
        for h in handles {
            let (rank, shard) = h.join().expect("rank thread must not panic");
            shards[rank] = Some(shard);
        }
    });
    shards.into_iter().map(Option::unwrap).collect()
}

fn chaos_over_tcp(world: usize) {
    let cfg1 = PaConfig::new(3_000, 1).with_seed(41);
    let cfg4 = PaConfig::new(3_000, 4).with_seed(41);
    for fault_seed in 0..2u64 {
        let plan = plan_for(fault_seed);

        // General engine, x = 4.
        let shards = run_faulty_world::<Msg>(world, plan, |_, t| {
            let part = partition::build(Scheme::Rrp, cfg4.n, world);
            generate_rank_streaming(&cfg4, &part, &chaos_opts(), t, EdgeList::new()).0
        });
        assert_eq!(
            fnv1a(&EdgeList::concat(shards).canonicalized()),
            ORACLE_X4,
            "x=4 diverged under faults over TCP: P={world} fault_seed={fault_seed}"
        );

        // Dedicated x = 1 engine.
        let shards = run_faulty_world::<Msg1>(world, plan, |_, t| {
            let part = partition::build(Scheme::Lcp, cfg1.n, world);
            generate_rank_x1_streaming(&cfg1, &part, &chaos_opts(), t, EdgeList::new()).0
        });
        assert_eq!(
            fnv1a(&EdgeList::concat(shards).canonicalized()),
            ORACLE_X1,
            "x=1 diverged under faults over TCP: P={world} fault_seed={fault_seed}"
        );
    }
}

#[test]
fn chaos_over_tcp_p2() {
    chaos_over_tcp(2);
}

#[test]
fn chaos_over_tcp_p4() {
    chaos_over_tcp(4);
}
