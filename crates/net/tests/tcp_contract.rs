//! The shared [`pa_mpsim::conformance`] suite over [`TcpTransport`] —
//! the same assertions `Comm`, `LoopbackTransport`, and `FaultTransport`
//! pass in `pa-mpsim`'s `transport_contract` test.
//!
//! Two deployment shapes are covered:
//!
//! * **In-process worlds** (one thread per rank over real loopback
//!   sockets) at 1, 2, and 4 ranks — fast, race-free ephemeral ports via
//!   [`TcpConfig::local_world`].
//! * **Multi-process worlds** at 2 and 4 ranks: the test re-executes its
//!   own binary once per rank (`PA_NET_CHILD_RANK` set), so the contract
//!   is also proven across genuine process boundaries, where nothing can
//!   accidentally share memory.

use std::process::Command;
use std::time::Duration;

use pa_mpsim::conformance::{check_multi_rank, check_single_rank};
use pa_net::{TcpConfig, TcpTransport};

/// Run `f` as every rank of an in-process TCP world.
fn run_tcp_world(world: usize, f: impl Fn(TcpTransport<u64>) + Send + Sync) {
    let ranks = TcpConfig::local_world(world).expect("loopback world");
    std::thread::scope(|s| {
        for (cfg, listener) in ranks {
            let f = &f;
            s.spawn(move || {
                f(TcpTransport::connect_with_listener(cfg, listener)
                    .expect("bootstrap must succeed"))
            });
        }
    });
}

#[test]
fn tcp_conforms_single_rank() {
    let mut ranks = TcpConfig::local_world(1).expect("loopback world");
    let (cfg, listener) = ranks.pop().unwrap();
    check_single_rank(TcpTransport::<u64>::connect_with_listener(cfg, listener).unwrap());
}

#[test]
fn tcp_conforms() {
    run_tcp_world(2, check_multi_rank);
}

#[test]
fn tcp_conforms_at_four_ranks() {
    run_tcp_world(4, check_multi_rank);
}

/// Not a test of its own: when `PA_NET_CHILD_RANK` is set, this entry
/// is a *rank* of the multi-process worlds spawned below, and its exit
/// status is that rank's verdict. Without the variable it is a no-op.
#[test]
fn process_world_child_entry() {
    let Ok(rank) = std::env::var("PA_NET_CHILD_RANK") else {
        return;
    };
    let rank: usize = rank.parse().unwrap();
    let peers: Vec<String> = std::env::var("PA_NET_CHILD_PEERS")
        .unwrap()
        .split(',')
        .map(str::to_string)
        .collect();
    let mut cfg = TcpConfig::new(rank, peers.len(), peers);
    cfg.connect_timeout = Duration::from_secs(30);
    check_multi_rank(TcpTransport::<u64>::connect(cfg).expect("child bootstrap"));
}

/// Spawn one OS process per rank (re-executing this test binary) and
/// require every rank to pass the conformance suite.
fn run_process_world(world: usize) {
    // Allocate distinct loopback ports by bind-and-release; the children
    // re-bind them. (The tiny steal window is the same trade `palaunch`
    // makes; connect retries absorb slow starters.)
    let peers: Vec<String> = (0..world)
        .map(|_| {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        })
        .collect();
    let exe = std::env::current_exe().unwrap();
    let children: Vec<_> = (0..world)
        .map(|rank| {
            Command::new(&exe)
                .args(["--exact", "process_world_child_entry", "--test-threads=1"])
                .env("PA_NET_CHILD_RANK", rank.to_string())
                .env("PA_NET_CHILD_PEERS", peers.join(","))
                .spawn()
                .expect("spawn child rank")
        })
        .collect();
    for (rank, child) in children.into_iter().enumerate() {
        let status = child.wait_with_output().expect("wait for child rank");
        assert!(
            status.status.success(),
            "rank {rank} failed the conformance suite: {status:?}"
        );
    }
}

#[test]
fn tcp_conforms_across_two_processes() {
    run_process_world(2);
}

#[test]
fn tcp_conforms_across_four_processes() {
    run_process_world(4);
}

#[test]
fn connecting_to_a_dead_world_fails_cleanly() {
    // Rank 1 of a 2-rank world whose rank 0 does not exist: grab a port,
    // release it, never start rank 0. The dial must give up at the
    // connect timeout with an error naming rank 0 — not hang.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let live = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let mut cfg = TcpConfig::new(1, 2, vec![dead, live]);
    cfg.connect_timeout = Duration::from_millis(400);
    let start = std::time::Instant::now();
    let err = TcpTransport::<u64>::connect(cfg).map(|_| ()).unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "connect did not respect its timeout"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("rank 0"),
        "error must name the dead rank: {msg}"
    );
}

#[test]
fn killed_peer_fails_receives_with_a_diagnostic() {
    // Rank 1 vanishes without the orderly BYE (its process would have
    // been killed); rank 0's parked receive must panic with a diagnostic
    // naming rank 1 instead of sleeping forever.
    let mut ranks = TcpConfig::local_world(2).expect("loopback world");
    let (cfg1, l1) = ranks.pop().unwrap();
    let (cfg0, l0) = ranks.pop().unwrap();
    let killer = std::thread::spawn(move || {
        let t: TcpTransport<u64> = TcpTransport::connect_with_listener(cfg1, l1).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Simulate a crash: sever both connections without a BYE.
        t.sever();
    });
    let mut t: TcpTransport<u64> = TcpTransport::connect_with_listener(cfg0, l0).unwrap();
    let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        use pa_mpsim::Transport;
        // Far longer than the kill delay: only the crash can end this.
        loop {
            if t.recv_timeout(Duration::from_secs(30)).is_some() {
                panic!("no traffic was ever sent");
            }
        }
    }));
    killer.join().unwrap();
    let panic_msg = match verdict {
        Ok(()) => unreachable!(),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into()),
    };
    assert!(
        panic_msg.contains("rank 1"),
        "crash diagnostic must name the dead peer: {panic_msg}"
    );
}
