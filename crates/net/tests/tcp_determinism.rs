//! The generators over the TCP backend must produce *exactly* the edge
//! sets every other backend produces: the PR-1 FNV-1a oracles pin the
//! canonicalized output of `PaConfig::new(3000, x).with_seed(41)`, and
//! a world of `TcpTransport` ranks (each engine running against real
//! sockets, messages crossing as bytes) must reproduce them for every
//! partition scheme at 2 and 4 ranks.

use pa_core::par::{
    generate_rank3_streaming, generate_rank_streaming, generate_rank_x1_streaming, Msg, Msg1,
};
use pa_core::partition::{self, Scheme};
use pa_core::{GenOptions, PaConfig};
use pa_graph::EdgeList;
use pa_mpsim::{Transport, Wire};
use pa_net::{TcpConfig, TcpTransport};

/// The fingerprints captured from the PR-1 codebase (see
/// `tests/determinism.rs` at the repo root).
const ORACLE_X1: u64 = 0xdefa6458a590e3ba;
const ORACLE_X4: u64 = 0x66b9ce422f65dc31;

fn fnv1a(edges: &EdgeList) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for (u, v) in edges.iter() {
        for b in u.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Run one rank function per thread over a real-socket TCP world and
/// collect the per-rank edge shards in rank order.
fn run_world<M: Wire + Send + 'static>(
    world: usize,
    rank_fn: impl Fn(usize, &mut TcpTransport<M>) -> EdgeList + Send + Sync,
) -> Vec<EdgeList> {
    let ranks = TcpConfig::local_world(world).expect("loopback world");
    let mut shards: Vec<Option<EdgeList>> = (0..world).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|(cfg, listener)| {
                let rank_fn = &rank_fn;
                let rank = cfg.rank;
                s.spawn(move || {
                    let mut t: TcpTransport<M> =
                        TcpTransport::connect_with_listener(cfg, listener).unwrap();
                    let shard = rank_fn(rank, &mut t);
                    t.barrier();
                    (rank, shard)
                })
            })
            .collect();
        for h in handles {
            let (rank, shard) = h.join().expect("rank thread must not panic");
            shards[rank] = Some(shard);
        }
    });
    shards.into_iter().map(Option::unwrap).collect()
}

#[test]
fn tcp_backend_reproduces_the_oracles_for_every_scheme() {
    let cfg1 = PaConfig::new(3_000, 1).with_seed(41);
    let cfg4 = PaConfig::new(3_000, 4).with_seed(41);
    for world in [2usize, 4] {
        for scheme in Scheme::ALL {
            // General engine, x = 4.
            let shards = run_world::<Msg>(world, |rank, t| {
                let part = partition::build(scheme, cfg4.n, world);
                assert_eq!(rank, t.rank());
                generate_rank_streaming(&cfg4, &part, &GenOptions::default(), t, EdgeList::new()).0
            });
            assert_eq!(
                fnv1a(&EdgeList::concat(shards).canonicalized()),
                ORACLE_X4,
                "x=4 drifted over TCP: P={world} {scheme}"
            );

            // Dedicated x = 1 engine.
            let shards = run_world::<Msg1>(world, |_, t| {
                let part = partition::build(scheme, cfg1.n, world);
                generate_rank_x1_streaming(&cfg1, &part, &GenOptions::default(), t, EdgeList::new())
                    .0
            });
            assert_eq!(
                fnv1a(&EdgeList::concat(shards).canonicalized()),
                ORACLE_X1,
                "x=1 drifted over TCP: P={world} {scheme}"
            );

            // General engine on the x = 1 config: same oracle.
            let shards = run_world::<Msg>(world, |_, t| {
                let part = partition::build(scheme, cfg1.n, world);
                generate_rank_streaming(&cfg1, &part, &GenOptions::default(), t, EdgeList::new()).0
            });
            assert_eq!(
                fnv1a(&EdgeList::concat(shards).canonicalized()),
                ORACLE_X1,
                "general path (x=1) drifted over TCP: P={world} {scheme}"
            );
        }
    }
}

#[test]
fn tcp_engine3_reproduces_the_oracles_with_zero_data_messages() {
    // Engine3 resolves every dependency chain locally, so over real
    // sockets it must (a) still land on the PR-1 fingerprints for every
    // scheme — including block-cyclic — and (b) leave the point-to-point
    // ledger at exactly zero on every rank (collectives are tracked
    // separately and are the driver's, not the engine's).
    let cfg1 = PaConfig::new(3_000, 1).with_seed(41);
    let cfg4 = PaConfig::new(3_000, 4).with_seed(41);
    for world in [2usize, 4] {
        for scheme in Scheme::EXTENDED {
            for (cfg, oracle, label) in [(&cfg4, ORACLE_X4, "x=4"), (&cfg1, ORACLE_X1, "x=1")] {
                let shards = run_world::<Msg>(world, |_, t| {
                    let part = partition::build(scheme, cfg.n, world);
                    let shard = generate_rank3_streaming(
                        cfg,
                        &part,
                        &GenOptions::default(),
                        t,
                        EdgeList::new(),
                    )
                    .0;
                    assert_eq!(
                        t.stats().msgs_sent,
                        0,
                        "engine3 sent data messages over TCP: P={world} {scheme} {label}"
                    );
                    assert_eq!(t.stats().msgs_recv, 0);
                    shard
                });
                assert_eq!(
                    fnv1a(&EdgeList::concat(shards).canonicalized()),
                    oracle,
                    "engine3 ({label}) drifted over TCP: P={world} {scheme}"
                );
            }
        }
    }
}

#[test]
fn tcp_backend_reproduces_the_nlpa_oracles() {
    // The nlpa model over real sockets: α = 1.0 must land on the PA
    // oracle byte-for-byte (the surrogate is defined to degenerate to
    // the copy model there), and α = 1.5 on the fingerprint pinned by
    // `tests/models.rs` — through both the message-passing and the
    // communication-free engine.
    let cfg4 = PaConfig::new(3_000, 4).with_seed(41);
    const NLPA_X4_A15: u64 = 0x5fd6a4040af24989;
    for (alpha, oracle) in [(1.0f64, ORACLE_X4), (1.5, NLPA_X4_A15)] {
        let opts = GenOptions::default().with_alpha(alpha);
        for world in [2usize, 4] {
            for scheme in Scheme::ALL {
                let shards = run_world::<Msg>(world, |_, t| {
                    let part = partition::build(scheme, cfg4.n, world);
                    generate_rank_streaming(&cfg4, &part, &opts, t, EdgeList::new()).0
                });
                assert_eq!(
                    fnv1a(&EdgeList::concat(shards).canonicalized()),
                    oracle,
                    "engine2 nlpa drifted over TCP: alpha={alpha} P={world} {scheme}"
                );
                let shards = run_world::<Msg>(world, |_, t| {
                    let part = partition::build(scheme, cfg4.n, world);
                    generate_rank3_streaming(&cfg4, &part, &opts, t, EdgeList::new()).0
                });
                assert_eq!(
                    fnv1a(&EdgeList::concat(shards).canonicalized()),
                    oracle,
                    "engine3 nlpa drifted over TCP: alpha={alpha} P={world} {scheme}"
                );
            }
        }
    }
}

#[test]
fn tcp_stats_allreduce_agrees_with_local_totals() {
    // The merged-statistics path the CLI uses: after generation, every
    // rank allreduces its message counters; the global totals must agree
    // on every rank and match the sum of the per-rank ledgers. Sent and
    // received totals must also balance world-wide (nothing lost on the
    // wire, nothing double-counted).
    let cfg = PaConfig::new(2_000, 4).with_seed(7);
    let world = 4;
    let ranks = TcpConfig::local_world(world).expect("loopback world");
    std::thread::scope(|s| {
        for (tcfg, listener) in ranks {
            let cfg = &cfg;
            s.spawn(move || {
                let mut t: TcpTransport<Msg> =
                    TcpTransport::connect_with_listener(tcfg, listener).unwrap();
                let part = partition::build(Scheme::Lcp, cfg.n, world);
                generate_rank_streaming(
                    cfg,
                    &part,
                    &GenOptions::default(),
                    &mut t,
                    EdgeList::new(),
                );
                let sent = t.stats().msgs_sent;
                let recv = t.stats().msgs_recv;
                let global_sent = t.allreduce_sum(sent);
                let global_recv = t.allreduce_sum(recv);
                assert_eq!(
                    global_sent, global_recv,
                    "world-wide sent and received message totals must balance"
                );
                assert_eq!(t.allgather_u64(sent).iter().sum::<u64>(), global_sent);
            });
        }
    });
}
