//! Offline property-testing shim.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of the `proptest` API the workspace actually uses —
//! `proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`, `any`,
//! integer/float range strategies, tuples, `prop_map` and
//! `prop::collection::vec`. It is wired in via a dependency rename
//! (`proptest = { package = "pa-ptest", ... }`) so test code keeps the
//! upstream import paths.
//!
//! Sampling is deterministic: each test derives its RNG stream from the test
//! name, so failures reproduce across runs. There is no shrinking — a failing
//! case panics with the sampled values available via `prop_assert!` messages.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod prop {
    //! Namespace mirror of `proptest::prop` (only `collection` is provided).
    pub mod collection {
        //! Strategies for collections.
        pub use crate::strategy::vec;
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::{any, vec as prop_vec, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use test_runner::ProptestConfig;

/// Defines `#[test]` functions whose arguments are sampled from strategies.
///
/// Supports the upstream grammar subset:
/// `proptest! { #![proptest_config(expr)] #[test] fn name(arg in strategy, ...) { body } ... }`
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejected += 1;
                            assert!(
                                __rejected < 256 * __config.cases.max(1),
                                "{}: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
