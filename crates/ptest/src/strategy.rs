//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Box a strategy behind `dyn Strategy` (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! unsigned_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u128::from(u64::MAX) {
                    // Whole u64 domain: the raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

unsigned_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from a non-empty list of alternatives.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Types with a canonical "sample anything" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T` (mirror of `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Vectors whose length is drawn from `len` and elements from `elem`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..2000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5u32..=5).sample(&mut rng);
            assert_eq!(w, 5);
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = TestRng::for_test("full");
        for _ in 0..100 {
            let v = (1u64..=u64::MAX).sample(&mut rng);
            assert!(v >= 1);
        }
        let _ = (0u64..=u64::MAX).sample(&mut rng);
    }

    #[test]
    fn map_tuple_vec_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = vec((0u64..10, 0u64..10).prop_map(|(a, b)| a + b), 2..6);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&s| s < 19));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::for_test("oneof");
        let strat = OneOf::new(vec![
            boxed(Just(1u64)),
            boxed(Just(2u64)),
            boxed(Just(3u64)),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
