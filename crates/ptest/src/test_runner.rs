//! Deterministic case runner: RNG, config and the reject signal.

use std::time::{SystemTime, UNIX_EPOCH};

/// How a single sampled case may fail without failing the whole test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` and should be re-drawn.
    Reject,
}

/// Per-test configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Splitmix64 generator seeded from the test name (reproducible), optionally
/// perturbed by `PA_PTEST_SEED` to explore fresh streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG whose stream is a pure function of the test name (and the
    /// `PA_PTEST_SEED` env var, when set; `PA_PTEST_SEED=time` randomises).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PA_PTEST_SEED") {
            let salt = if extra == "time" {
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(1)
            } else {
                extra.parse().unwrap_or(0)
            };
            h ^= salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        // Deliberately ignore PA_PTEST_SEED here: both rngs see the same env.
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let mut r = TestRng::for_test("x");
        let b: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::for_test("unit");
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
