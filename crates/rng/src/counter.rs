//! Counter-based (stateless) random draws.
//!
//! The parallel PA algorithms need each node's random choices to be a pure
//! function of `(seed, node, edge, attempt)` so that the generated network
//! does not depend on how nodes are partitioned among ranks, on the rank
//! count, or on message timing. A counter-based generator provides exactly
//! that: no sequential state is shared between events.

use crate::splitmix::{mix64, GOLDEN_GAMMA};
use crate::Rng64;

/// Derive the stream key for one logical draw event.
///
/// The key is a strongly mixed combination of the global `seed`, the node
/// id `t`, the edge index `e` within the node, and the retry `attempt`
/// (Algorithm 3.2 re-draws `k` and `l` when a late duplicate is detected).
/// Distinct tuples map to distinct keys with overwhelming probability: each
/// component passes through the bijective SplitMix64 finalizer before being
/// combined.
#[inline]
pub fn draw_key(seed: u64, t: u64, e: u32, attempt: u32) -> u64 {
    EventKeys::for_node(seed, t).key(e, attempt)
}

/// The `(seed, node)` prefix of [`draw_key`], precomputed once per node.
///
/// Deriving a draw key mixes three words: the seed, the node id, and the
/// folded `(edge, attempt)` pair. The first two mixes depend only on
/// `(seed, t)`, so callers that draw many events for one node — a whole
/// row of edge slots, or the retry loop of a single slot — can hoist them
/// and pay a single `mix64` per event instead of three. The produced keys
/// are **bit-identical** to [`draw_key`]'s (the determinism suite pins
/// this), so batched and unbatched draw paths interchange freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKeys {
    /// `mix64(mix64(seed ^ C₁) ^ t·γ)` — the per-node key prefix.
    node: u64,
}

impl EventKeys {
    /// Precompute the key prefix for all events of node `t`.
    #[inline]
    pub fn for_node(seed: u64, t: u64) -> Self {
        let k = mix64(seed ^ 0x5851_F42D_4C95_7F2D);
        Self {
            node: mix64(k ^ t.wrapping_mul(GOLDEN_GAMMA)),
        }
    }

    /// The draw key of event `(e, attempt)` for this node — one `mix64`.
    #[inline]
    pub fn key(&self, e: u32, attempt: u32) -> u64 {
        // Fold (e, attempt) into one word; they are both small in practice
        // but we reserve 32 bits each so no tuple aliases another.
        let ea = ((e as u64) << 32) | attempt as u64;
        mix64(self.node ^ ea.wrapping_mul(0xDA94_2042_E4DD_58B5))
    }

    /// The event's draw stream (equivalent to [`CounterRng::for_event`]).
    #[inline]
    pub fn rng(&self, e: u32, attempt: u32) -> CounterRng {
        CounterRng::from_key(self.key(e, attempt))
    }
}

/// A short independent stream of draws for one logical event.
///
/// Internally a SplitMix64 sequence whose starting state is the event key;
/// because the `mix64` finalizer is a bijection and the Weyl increment is odd, streams
/// for different keys never merge within any realistic draw count.
///
/// ```
/// use pa_rng::{CounterRng, Rng64};
/// // The draws for node 17's 2nd edge are the same no matter where or
/// // when they are evaluated:
/// let a: Vec<u64> = {
///     let mut r = CounterRng::for_event(42, 17, 2, 0);
///     (0..3).map(|_| r.next_u64()).collect()
/// };
/// let b: Vec<u64> = {
///     let mut r = CounterRng::for_event(42, 17, 2, 0);
///     (0..3).map(|_| r.next_u64()).collect()
/// };
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// Stream for the event `(seed, t, e, attempt)`.
    #[inline]
    pub fn for_event(seed: u64, t: u64, e: u32, attempt: u32) -> Self {
        Self {
            state: draw_key(seed, t, e, attempt),
        }
    }

    /// Stream from a raw key (when the caller has already combined its
    /// identifiers, e.g. via [`draw_key`]).
    #[inline]
    pub fn from_key(key: u64) -> Self {
        Self { state: key }
    }
}

impl Rng64 for CounterRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn event_keys_match_draw_key_exactly() {
        // The hoisted two-mix prefix must reproduce the reference
        // three-mix derivation bit for bit: every engine's determinism
        // oracle rides on this equality.
        let reference = |seed: u64, t: u64, e: u32, attempt: u32| {
            let ea = ((e as u64) << 32) | attempt as u64;
            let mut k = mix64(seed ^ 0x5851_F42D_4C95_7F2D);
            k = mix64(k ^ t.wrapping_mul(GOLDEN_GAMMA));
            mix64(k ^ ea.wrapping_mul(0xDA94_2042_E4DD_58B5))
        };
        use crate::splitmix::{mix64, GOLDEN_GAMMA};
        for seed in [0u64, 1, 41, u64::MAX] {
            for t in [1u64, 2, 100, 12_345, u64::MAX - 1] {
                let keys = EventKeys::for_node(seed, t);
                for e in [0u32, 1, 7, u32::MAX] {
                    for a in [0u32, 1, 63, u32::MAX] {
                        assert_eq!(keys.key(e, a), reference(seed, t, e, a));
                        assert_eq!(keys.key(e, a), draw_key(seed, t, e, a));
                    }
                }
            }
        }
    }

    #[test]
    fn event_keys_rng_matches_for_event_stream() {
        let keys = EventKeys::for_node(9, 100);
        let mut a = keys.rng(3, 1);
        let mut b = CounterRng::for_event(9, 100, 3, 1);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keys_are_distinct_across_nodes() {
        let mut seen = HashSet::new();
        for t in 0..10_000u64 {
            assert!(seen.insert(draw_key(1, t, 0, 0)), "collision at t={t}");
        }
    }

    #[test]
    fn keys_are_distinct_across_edges_and_attempts() {
        let mut seen = HashSet::new();
        for e in 0..64 {
            for a in 0..64 {
                assert!(seen.insert(draw_key(1, 5, e, a)));
            }
        }
    }

    #[test]
    fn keys_depend_on_seed() {
        assert_ne!(draw_key(1, 5, 0, 0), draw_key(2, 5, 0, 0));
    }

    #[test]
    fn event_streams_are_reproducible() {
        let mut a = CounterRng::for_event(9, 100, 3, 1);
        let mut b = CounterRng::for_event(9, 100, 3, 1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_events_are_uncorrelated() {
        // Crude independence check: first draws of consecutive nodes
        // should look uniform (mean near 2^63).
        let n = 50_000u64;
        let mean = (0..n)
            .map(|t| CounterRng::for_event(7, t, 0, 0).next_u64() as f64)
            .sum::<f64>()
            / n as f64;
        let expect = (u64::MAX / 2) as f64;
        assert!((mean / expect - 1.0).abs() < 0.01, "mean ratio off");
    }

    #[test]
    fn range_draws_cover_interval() {
        let mut hit_lo = false;
        let mut hit_hi = false;
        for t in 0..2_000u64 {
            let v = CounterRng::for_event(3, t, 0, 0).gen_range(10, 14);
            assert!((10..14).contains(&v));
            hit_lo |= v == 10;
            hit_hi |= v == 13;
        }
        assert!(hit_lo && hit_hi);
    }
}
