//! Counter-based (stateless) random draws.
//!
//! The parallel PA algorithms need each node's random choices to be a pure
//! function of `(seed, node, edge, attempt)` so that the generated network
//! does not depend on how nodes are partitioned among ranks, on the rank
//! count, or on message timing. A counter-based generator provides exactly
//! that: no sequential state is shared between events.

use crate::splitmix::{mix64, GOLDEN_GAMMA};
use crate::Rng64;

/// Derive the stream key for one logical draw event.
///
/// The key is a strongly mixed combination of the global `seed`, the node
/// id `t`, the edge index `e` within the node, and the retry `attempt`
/// (Algorithm 3.2 re-draws `k` and `l` when a late duplicate is detected).
/// Distinct tuples map to distinct keys with overwhelming probability: each
/// component passes through the bijective SplitMix64 finalizer before being
/// combined.
#[inline]
pub fn draw_key(seed: u64, t: u64, e: u32, attempt: u32) -> u64 {
    // Fold (e, attempt) into one word; they are both small in practice but
    // we reserve 32 bits each so no tuple aliases another.
    let ea = ((e as u64) << 32) | attempt as u64;
    let mut k = mix64(seed ^ 0x5851_F42D_4C95_7F2D);
    k = mix64(k ^ t.wrapping_mul(GOLDEN_GAMMA));
    mix64(k ^ ea.wrapping_mul(0xDA94_2042_E4DD_58B5))
}

/// A short independent stream of draws for one logical event.
///
/// Internally a SplitMix64 sequence whose starting state is the event key;
/// because the `mix64` finalizer is a bijection and the Weyl increment is odd, streams
/// for different keys never merge within any realistic draw count.
///
/// ```
/// use pa_rng::{CounterRng, Rng64};
/// // The draws for node 17's 2nd edge are the same no matter where or
/// // when they are evaluated:
/// let a: Vec<u64> = {
///     let mut r = CounterRng::for_event(42, 17, 2, 0);
///     (0..3).map(|_| r.next_u64()).collect()
/// };
/// let b: Vec<u64> = {
///     let mut r = CounterRng::for_event(42, 17, 2, 0);
///     (0..3).map(|_| r.next_u64()).collect()
/// };
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// Stream for the event `(seed, t, e, attempt)`.
    #[inline]
    pub fn for_event(seed: u64, t: u64, e: u32, attempt: u32) -> Self {
        Self {
            state: draw_key(seed, t, e, attempt),
        }
    }

    /// Stream from a raw key (when the caller has already combined its
    /// identifiers, e.g. via [`draw_key`]).
    #[inline]
    pub fn from_key(key: u64) -> Self {
        Self { state: key }
    }
}

impl Rng64 for CounterRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_distinct_across_nodes() {
        let mut seen = HashSet::new();
        for t in 0..10_000u64 {
            assert!(seen.insert(draw_key(1, t, 0, 0)), "collision at t={t}");
        }
    }

    #[test]
    fn keys_are_distinct_across_edges_and_attempts() {
        let mut seen = HashSet::new();
        for e in 0..64 {
            for a in 0..64 {
                assert!(seen.insert(draw_key(1, 5, e, a)));
            }
        }
    }

    #[test]
    fn keys_depend_on_seed() {
        assert_ne!(draw_key(1, 5, 0, 0), draw_key(2, 5, 0, 0));
    }

    #[test]
    fn event_streams_are_reproducible() {
        let mut a = CounterRng::for_event(9, 100, 3, 1);
        let mut b = CounterRng::for_event(9, 100, 3, 1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_events_are_uncorrelated() {
        // Crude independence check: first draws of consecutive nodes
        // should look uniform (mean near 2^63).
        let n = 50_000u64;
        let mean = (0..n)
            .map(|t| CounterRng::for_event(7, t, 0, 0).next_u64() as f64)
            .sum::<f64>()
            / n as f64;
        let expect = (u64::MAX / 2) as f64;
        assert!((mean / expect - 1.0).abs() < 0.01, "mean ratio off");
    }

    #[test]
    fn range_draws_cover_interval() {
        let mut hit_lo = false;
        let mut hit_hi = false;
        for t in 0..2_000u64 {
            let v = CounterRng::for_event(3, t, 0, 0).gen_range(10, 14);
            assert!((10..14).contains(&v));
            hit_lo |= v == 10;
            hit_hi |= v == 13;
        }
        assert!(hit_lo && hit_hi);
    }
}
