//! Deterministic pseudo-random number generation for the `prefattach`
//! workspace.
//!
//! The parallel preferential-attachment algorithms of Alam, Khan & Marathe
//! (SC'13) require every processor to draw random choices *independently*
//! of the other processors. To make the generated networks reproducible —
//! and, for the `x = 1` algorithm, **bit-identical regardless of the number
//! of ranks or the partitioning scheme** — this crate provides
//! *counter-based* generators keyed by `(seed, node, edge, attempt)` in
//! addition to conventional sequential stream generators.
//!
//! Contents:
//!
//! * [`SplitMix64`] — tiny, fast stream generator; also the canonical seed
//!   expander for the other generators.
//! * [`Xoshiro256pp`] — general-purpose stream generator with 2²⁵⁶−1 period
//!   and `jump()` support for cheap independent streams.
//! * [`CounterRng`] and [`draw_key`] — stateless, counter-based draws: each
//!   logical event `(seed, node, edge, attempt)` owns an independent short
//!   stream, so the random choices a node makes do not depend on which rank
//!   executes it or in which order.
//! * [`EventKeys`] — the `(seed, node)` prefix of [`draw_key`] hoisted out,
//!   so batched per-node draws (whole edge rows, retry loops) pay one mix
//!   per event instead of three; keys are bit-identical to [`draw_key`]'s.
//! * [`Rng64`] — the minimal trait the workspace programs against, with
//!   provided methods for unbiased range sampling ([`Rng64::gen_range`]),
//!   floating-point draws ([`Rng64::next_f64`]) and Bernoulli trials
//!   ([`Rng64::gen_bool`]).
//!
//! All generators implement `Clone` and are `Send`; none allocate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod splitmix;
mod xoshiro;

pub use counter::{draw_key, CounterRng, EventKeys};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// Minimal random-source trait used throughout the workspace.
///
/// Implementors provide [`Rng64::next_u64`]; everything else is derived.
/// The derived methods are deterministic functions of the `u64` stream, so
/// two generators producing the same `u64` sequence behave identically.
pub trait Rng64 {
    /// Return the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the upper 53 bits of one `u64` draw, the standard
    /// dyadic-rational construction: every representable output is an
    /// integer multiple of 2⁻⁵³.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 2^-53
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method
    /// (widening multiply with rejection of the biased residue band).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below: bound must be positive");
        // Fast path: widening multiply maps [0, 2^64) onto [0, bound).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // Reject draws falling in the short first interval so every
            // output value has exactly floor(2^64 / bound) preimages.
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive-exclusive range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range [{lo}, {hi})");
        lo + self.gen_below(hi - lo)
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// Values of `p` outside `[0, 1]` are clamped by construction
    /// (`p <= 0` never fires, `p >= 1` always fires).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake source for testing the provided methods.
    struct Fixed(Vec<u64>, usize);
    impl Rng64 for Fixed {
        fn next_u64(&mut self) -> u64 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Fixed(vec![0, u64::MAX, 1 << 63, 12345], 0);
        for _ in 0..8 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v), "{v} out of [0,1)");
        }
    }

    #[test]
    fn f64_zero_and_max() {
        let mut r = Fixed(vec![0], 0);
        assert_eq!(r.next_f64(), 0.0);
        let mut r = Fixed(vec![u64::MAX], 0);
        let v = r.next_f64();
        assert!(v < 1.0 && v > 0.9999999999999998);
    }

    #[test]
    fn gen_below_covers_small_bounds() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_below_one_is_always_zero() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10 {
            assert_eq!(r.gen_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_below_zero_panics() {
        let mut r = SplitMix64::new(1);
        let _ = r.gen_below(0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        let mut r = SplitMix64::new(1);
        let _ = r.gen_range(5, 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix64::new(42);
        for _ in 0..50 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_half_is_roughly_balanced() {
        let mut r = SplitMix64::new(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_below_is_unbiased_over_small_modulus() {
        // With bound = 3 a naive modulo would over-represent {0,1}.
        // Lemire + rejection should give each residue ~ n/3.
        let mut r = Xoshiro256pp::seed_from(1, 0);
        let mut counts = [0u32; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[r.gen_below(3) as usize] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 3.0;
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "counts = {counts:?}"
            );
        }
    }
}
