//! SplitMix64: Steele, Lea & Flood's fixed-increment generator.
//!
//! Used both as a small stand-alone generator and as the canonical seed
//! expander for [`crate::Xoshiro256pp`] and [`crate::CounterRng`].

use crate::Rng64;

/// Weyl-sequence increment (odd, chosen by the SplitMix64 authors).
pub(crate) const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalization mixer from SplitMix64 (a strengthened MurmurHash3 mixer).
///
/// This is a bijection on `u64`, so distinct inputs give distinct outputs.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 generator: a Weyl sequence fed through the `mix64` finalizer.
///
/// Period 2⁶⁴. Fast (one multiply-free addition plus the mixer per draw)
/// and statistically sound for its size; its main role here is expanding a
/// single `u64` seed into the larger states of other generators.
///
/// ```
/// use pa_rng::{Rng64, SplitMix64};
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Expose the raw state (the Weyl counter), mainly for tests.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain C
        // implementation by Sebastiano Vigna.
        let mut r = SplitMix64::new(1234567);
        let expect = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SplitMix64::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SplitMix64::new(99);
        let _ = a.next_u64();
        let mut b = a;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
