//! Xoshiro256++: Blackman & Vigna's general-purpose generator.

use crate::splitmix::SplitMix64;
use crate::Rng64;

/// Xoshiro256++ generator: 256-bit state, period 2²⁵⁶ − 1.
///
/// The workspace's general-purpose stream generator — used where a rank or
/// a benchmark needs a long sequence of draws that do *not* have to be
/// reproducible across different rank counts (for that, use
/// [`crate::CounterRng`]).
///
/// Independent streams for different ranks are obtained either with
/// [`Xoshiro256pp::seed_from`] (hash-separated seeding) or with
/// [`Xoshiro256pp::jump`] (polynomial jump of 2¹²⁸ steps, the method
/// recommended by the authors for parallel use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed from a single `u64`, expanding with SplitMix64 as recommended
    /// by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Seed an independent stream: stream `i` from seed `s` behaves as an
    /// unrelated generator from stream `j != i`.
    ///
    /// The pair is mixed into a single seed with the SplitMix64 finalizer,
    /// so `(seed, stream)` pairs never collide unless they are equal.
    pub fn seed_from(seed: u64, stream: u64) -> Self {
        // mix64 is a bijection; xor-with-constant keeps (s, 0) != (0, s).
        let mixed =
            crate::splitmix::mix64(seed ^ crate::splitmix::mix64(stream ^ 0xA076_1D64_78BD_642F));
        Self::new(mixed)
    }

    /// Jump forward 2¹²⁸ steps: equivalent to that many `next_u64` calls.
    ///
    /// Calling `jump` k times on generators cloned from one seed yields
    /// 2¹²⁸-spaced, effectively independent subsequences.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180ec6d33cfd0aba,
            0xd5a61266f0c9392c,
            0xa9582618e03fc9aa,
            0x39abdc4529b1661c,
        ];
        let mut s = [0u64; 4];
        for &j in &JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = s;
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::new(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = Xoshiro256pp::seed_from(7, 0);
        let mut b = Xoshiro256pp::seed_from(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_zero_differs_from_plain_seed() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::seed_from(7, 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn jump_changes_state_and_keeps_determinism() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::new(7);
        a.jump();
        b.jump();
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = Xoshiro256pp::new(7);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mean_of_unit_floats_is_near_half() {
        let mut r = Xoshiro256pp::new(2024);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn bit_balance() {
        // Every bit position should be set roughly half the time.
        let mut r = Xoshiro256pp::new(5);
        let n = 20_000;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let v = r.next_u64();
            for (b, c) in counts.iter_mut().enumerate() {
                *c += ((v >> b) & 1) as u32;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.03, "bit {b}: frac = {frac}");
        }
    }
}
