//! Property-based tests for the pa-rng generators.

use pa_rng::{draw_key, CounterRng, Rng64, SplitMix64, Xoshiro256pp};
use proptest::prelude::*;

proptest! {
    /// gen_below always returns a value strictly below the bound.
    #[test]
    fn gen_below_in_bounds(seed in any::<u64>(), bound in 1u64..=u64::MAX) {
        let mut r = SplitMix64::new(seed);
        let v = r.gen_below(bound);
        prop_assert!(v < bound);
    }

    /// gen_range stays inside [lo, hi) for arbitrary non-empty ranges.
    #[test]
    fn gen_range_in_bounds(seed in any::<u64>(), lo in 0u64..u64::MAX - 1, span in 1u64..1u64 << 32) {
        let hi = lo.saturating_add(span).max(lo + 1);
        let mut r = Xoshiro256pp::new(seed);
        let v = r.gen_range(lo, hi);
        prop_assert!(v >= lo && v < hi);
    }

    /// next_f64 is always in [0, 1).
    #[test]
    fn unit_float_in_bounds(seed in any::<u64>()) {
        let mut r = Xoshiro256pp::new(seed);
        for _ in 0..8 {
            let v = r.next_f64();
            prop_assert!((0.0..1.0).contains(&v));
        }
    }

    /// Counter draws are a pure function of the event tuple.
    #[test]
    fn counter_is_pure(seed in any::<u64>(), t in any::<u64>(), e in any::<u32>(), a in any::<u32>()) {
        let mut r1 = CounterRng::for_event(seed, t, e, a);
        let mut r2 = CounterRng::for_event(seed, t, e, a);
        prop_assert_eq!(r1.next_u64(), r2.next_u64());
        prop_assert_eq!(r1.next_u64(), r2.next_u64());
    }

    /// Distinct event tuples essentially never produce the same key.
    #[test]
    fn keys_differ_for_distinct_nodes(seed in any::<u64>(), t in 0u64..u64::MAX) {
        prop_assert_ne!(draw_key(seed, t, 0, 0), draw_key(seed, t + 1, 0, 0));
    }

    /// Cloned generators replay identically (stream purity).
    #[test]
    fn clone_replays(seed in any::<u64>(), skip in 0usize..32) {
        let mut a = Xoshiro256pp::new(seed);
        for _ in 0..skip { let _ = a.next_u64(); }
        let mut b = a.clone();
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// gen_bool(p) frequency tracks p within statistical tolerance.
    #[test]
    fn bernoulli_tracks_p(seed in any::<u64>(), p in 0.05f64..0.95) {
        let mut r = Xoshiro256pp::new(seed);
        let n = 4000;
        let hits = (0..n).filter(|_| r.gen_bool(p)).count() as f64;
        let mean = hits / n as f64;
        // 5 sigma tolerance for a binomial proportion.
        let sigma = (p * (1.0 - p) / n as f64).sqrt();
        prop_assert!((mean - p).abs() < 5.0 * sigma + 0.01,
            "p={p}, observed={mean}");
    }
}
