//! Side-by-side comparison of the random-graph models in the workspace:
//! preferential attachment (this paper), Erdős–Rényi, Watts–Strogatz
//! and Chung–Lu — the model family the paper's introduction surveys.
//!
//! ```text
//! cargo run -p pa-bench --release --example compare_models
//! ```

use pa_analysis::scaling::render_table;
use pa_core::{cl, er, par, partition::Scheme, ws, GenOptions, PaConfig};
use pa_graph::{degrees, metrics, Csr, EdgeList};
use pa_rng::Xoshiro256pp;

fn describe(name: &str, n: usize, edges: &EdgeList) -> Vec<String> {
    let deg = degrees::degree_sequence(n, edges);
    let stats = degrees::degree_stats(&deg).unwrap();
    let csr = Csr::from_edges(n, edges);
    let assort = metrics::degree_assortativity(&csr)
        .map(|r| format!("{r:+.3}"))
        .unwrap_or_else(|| "n/a".into());
    let diam = metrics::double_sweep_diameter(&csr, 0)
        .map(|d| d.to_string())
        .unwrap_or_else(|| "n/a".into());
    vec![
        name.to_string(),
        edges.len().to_string(),
        format!("{:.1}", stats.mean),
        stats.max.to_string(),
        format!("{:.4}", metrics::transitivity(&csr)),
        assort,
        diam,
        csr.connected_components().to_string(),
    ]
}

fn main() {
    let n = 30_000u64;
    let mean_deg = 8.0;
    println!("comparing models at n = {n}, mean degree ≈ {mean_deg}\n");

    // Preferential attachment (x = mean/2 since each edge adds 2 stubs).
    let pa_cfg = PaConfig::new(n, (mean_deg / 2.0) as u64).with_seed(1);
    let pa = par::generate(&pa_cfg, Scheme::Rrp, 4, &GenOptions::default()).edge_list();

    // Erdős–Rényi with matched density.
    let er_cfg = er::ErConfig::new(n, mean_deg / (n as f64 - 1.0)).with_seed(1);
    let erg = er::generate_par(&er_cfg, 4);

    // Watts–Strogatz with k = mean degree.
    let ws_cfg = ws::WsConfig::new(n, mean_deg as u64, 0.1).with_seed(1);
    let wsg = ws::generate(&ws_cfg, &mut Xoshiro256pp::new(1));

    // Chung–Lu with a power-law target.
    let cl_cfg = cl::ClConfig::new(cl::power_law_weights(n, 2.8, mean_deg), 1);
    let clg = cl::generate_par(&cl_cfg, 4);

    let rows = vec![
        describe("preferential attachment", n as usize, &pa),
        describe("Erdős–Rényi", n as usize, &erg),
        describe("Watts–Strogatz (β=0.1)", n as usize, &wsg),
        describe("Chung–Lu (γ=2.8)", n as usize, &clg),
    ];
    println!(
        "{}",
        render_table(
            &[
                "model",
                "edges",
                "mean deg",
                "max deg",
                "transitivity",
                "assortativity",
                "diam (≥)",
                "components",
            ],
            &rows
        )
    );
    println!(
        "signatures to look for: PA and Chung–Lu grow hubs (large max\n\
         degree) and are disassortative; Watts–Strogatz keeps the lattice's\n\
         high transitivity; Erdős–Rényi has neither hubs nor clustering."
    );
}
