//! Generating to disk the way the paper's cluster does it: every rank
//! writes its own partition's edges to the shared filesystem
//! independently; an analysis step reads the shards back.
//!
//! ```text
//! cargo run -p pa-bench --release --example generate_to_disk
//! ```

use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_graph::{io, EdgeList};

fn main() -> std::io::Result<()> {
    let cfg = PaConfig::new(50_000, 3).with_seed(99);
    let dir = std::env::temp_dir().join("prefattach_shards");
    std::fs::create_dir_all(&dir)?;
    println!(
        "generating n = {}, x = {} and sharding to {}",
        cfg.n,
        cfg.x,
        dir.display()
    );

    // Generate; each RankOutput holds exactly the edges of its partition.
    let out = par::generate(&cfg, Scheme::Lcp, 8, &GenOptions::default());
    for r in &out.ranks {
        let path = dir.join(format!("edges_{:04}.bin", r.rank));
        io::write_binary_file(&path, &r.edges)?;
        println!(
            "  rank {:>2}: {:>7} edges -> {}",
            r.rank,
            r.edges.len(),
            path.display()
        );
    }

    // Read the shards back and verify the reassembled network.
    let mut reassembled = EdgeList::new();
    for r in 0..out.ranks.len() {
        let shard = io::read_binary_file(dir.join(format!("edges_{r:04}.bin")))?;
        reassembled.extend_from(&shard);
    }
    assert_eq!(
        reassembled.canonicalized(),
        out.edge_list().canonicalized(),
        "disk round-trip must preserve the network"
    );
    pa_graph::validate::assert_valid_pa_network(cfg.n, cfg.x, &reassembled);
    println!(
        "reassembled {} edges from {} shards — validated",
        reassembled.len(),
        out.ranks.len()
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
