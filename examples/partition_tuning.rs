//! Choosing a partitioning scheme: run the same workload under UCP, LCP
//! and RRP and compare the load balance — the §3.5/§4.6 decision in
//! miniature.
//!
//! ```text
//! cargo run -p pa-bench --release --example partition_tuning
//! ```

use pa_analysis::scaling::render_table;
use pa_analysis::stats;
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_mpsim::cost::CostModel;

fn main() {
    let cfg = PaConfig::new(200_000, 8).with_seed(11);
    let ranks = 32;
    let model = CostModel::per_edge(cfg.x);
    println!(
        "workload: n = {}, x = {} on {ranks} ranks — which partitioning?\n",
        cfg.n, cfg.x
    );

    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let out = par::generate(&cfg, scheme, ranks, &GenOptions::default());
        let loads: Vec<f64> = out
            .ranks
            .iter()
            .map(|r| r.load().paper_load() as f64)
            .collect();
        let (mean, std) = stats::mean_std(&loads);
        let imbalance = stats::imbalance(&loads);
        let speedup = model.speedup(cfg.n, &out.loads());
        rows.push(vec![
            scheme.to_string(),
            format!("{mean:.0}"),
            format!("{:.1}%", 100.0 * std / mean),
            format!("{imbalance:.2}"),
            format!("{speedup:.1}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "mean load",
                "std/mean",
                "max/min",
                "speedup (model)"
            ],
            &rows
        )
    );
    println!(
        "rule of thumb from the paper: RRP when any node order works;\n\
         LCP when downstream analysis needs consecutive nodes per rank;\n\
         avoid UCP — equal node counts are not equal work."
    );
}
