//! Quickstart: generate a preferential-attachment network in parallel
//! and inspect it.
//!
//! ```text
//! cargo run -p pa-bench --release --example quickstart
//! ```

use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_graph::{degrees, validate, Csr};

fn main() {
    // A 100k-node scale-free network, 4 edges per node, on 8 ranks.
    let cfg = PaConfig::new(100_000, 4).with_seed(2024);
    println!(
        "generating PA network: n = {}, x = {}, p = {} ...",
        cfg.n, cfg.x, cfg.p
    );

    let out = par::generate(&cfg, Scheme::Rrp, 8, &GenOptions::default());
    let edges = out.edge_list();
    println!(
        "generated {} edges on {} ranks",
        edges.len(),
        out.ranks.len()
    );

    // The generator guarantees a simple graph with the exact edge count.
    validate::assert_valid_pa_network(cfg.n, cfg.x, &edges);
    println!("validated: no self-loops, no parallel edges, exact edge count");

    // Degree statistics: scale-free networks have hubs far above the mean.
    let deg = degrees::degree_sequence(cfg.n as usize, &edges);
    let stats = degrees::degree_stats(&deg).unwrap();
    println!(
        "degrees: min = {}, mean = {:.2}, max = {} (hub/mean ratio {:.0}x)",
        stats.min,
        stats.mean,
        stats.max,
        stats.max as f64 / stats.mean
    );

    // PA networks are connected by construction.
    let csr = Csr::from_edges(cfg.n as usize, &edges);
    println!("connected components: {}", csr.connected_components());

    // Per-rank traffic: the request/resolved protocol at work.
    let totals = out.total_counters();
    println!(
        "protocol: {} direct edges, {} copied edges, {} remote requests, {} duplicate retries",
        totals.direct_edges, totals.copy_edges, totals.requests_sent, totals.duplicate_retries
    );
}
