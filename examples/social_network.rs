//! Modelling a social network: generate a scale-free graph and run the
//! kind of analysis the paper's introduction motivates (degree
//! distribution, hubs, path lengths, clustering).
//!
//! ```text
//! cargo run -p pa-bench --release --example social_network
//! ```

use pa_analysis::powerlaw;
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_graph::{degrees, Csr};

fn main() {
    // A "follower graph": half a million users, each following 5 accounts
    // chosen by preferential attachment (popular accounts attract more
    // followers — the rich-get-richer mechanism).
    let cfg = PaConfig::new(500_000, 5).with_seed(7);
    println!(
        "generating follower graph (n = {}, x = {}) ...",
        cfg.n, cfg.x
    );
    let out = par::generate(&cfg, Scheme::Rrp, 8, &GenOptions::default());
    let edges = out.edge_list();
    let n = cfg.n as usize;
    let deg = degrees::degree_sequence(n, &edges);

    // 1. Power-law exponent — the scale-free signature.
    let fit = powerlaw::fit_mle(&deg, 10);
    println!(
        "degree distribution: gamma = {:.2} over {} tail accounts (scale-free)",
        fit.gamma, fit.tail_samples
    );

    // 2. Celebrity accounts: the top of the degree ranking.
    let mut ranked: Vec<(u64, u64)> = deg
        .iter()
        .enumerate()
        .map(|(v, &d)| (d, v as u64))
        .collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    println!("top-5 hubs (followers, account id):");
    for &(d, v) in ranked.iter().take(5) {
        println!("  account {v:>8} — {d} connections");
    }
    println!(
        "note: the oldest accounts dominate — first-mover advantage is a\n\
         built-in property of preferential attachment."
    );

    // 3. Small-world reachability: BFS from the largest hub.
    let csr = Csr::from_edges(n, &edges);
    let hub = ranked[0].1;
    let dist = csr.bfs_distances(hub);
    let reachable = dist.iter().filter(|&&d| d != u64::MAX).count();
    let max_hops = dist.iter().filter(|&&d| d != u64::MAX).max().unwrap();
    let mean_hops: f64 = dist
        .iter()
        .filter(|&&d| d != u64::MAX)
        .map(|&d| d as f64)
        .sum::<f64>()
        / reachable as f64;
    println!(
        "reachability from the top hub: {reachable}/{n} accounts, \
         mean {mean_hops:.2} hops, max {max_hops} hops"
    );

    // 4. Clustering around a sample of mid-degree accounts.
    let sample: Vec<u64> = ranked
        .iter()
        .filter(|&&(d, _)| (10..100).contains(&d))
        .map(|&(_, v)| v)
        .take(200)
        .collect();
    let cc: f64 = sample
        .iter()
        .map(|&v| csr.clustering_coefficient(v))
        .sum::<f64>()
        / sample.len() as f64;
    println!(
        "mean clustering coefficient over {} mid-degree accounts: {cc:.4}",
        sample.len()
    );
}
