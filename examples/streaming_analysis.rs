//! On-the-fly analysis without storing edges (paper §3.2: "some network
//! analysts may prefer to generate networks on the fly and analyze
//! [them] without performing disk I/O").
//!
//! Generates a large PA network whose edges are folded directly into
//! per-rank degree counters; the full edge list never exists in memory.
//!
//! ```text
//! cargo run -p pa-bench --release --example streaming_analysis
//! ```

use pa_analysis::powerlaw;
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};

fn main() {
    // 2M nodes × 8 edges = 16M edges: materialized that is ~256 MB of
    // edge list; streamed it is one u32 counter per node.
    let cfg = PaConfig::new(2_000_000, 8).with_seed(77);
    println!(
        "streaming-generating n = {}, x = {} ({} edges) ...",
        cfg.n,
        cfg.x,
        cfg.expected_edges()
    );

    let start = std::time::Instant::now();
    let outs = par::generate_streaming(&cfg, Scheme::Rrp, 8, &GenOptions::default(), |_rank| {
        par::DegreeCountSink::new(cfg.n)
    });
    let elapsed = start.elapsed();

    // Each edge was emitted exactly once by its creating rank, so the
    // merged counters are the exact degree sequence.
    let mut edge_total = 0u64;
    for o in &outs {
        edge_total += o.counters.direct_edges + o.counters.copy_edges;
    }
    let deg = par::DegreeCountSink::merge(outs.into_iter().map(|o| o.sink));
    println!(
        "done in {:.1}s — handshake check: Σdeg = {} = 2m = {}",
        elapsed.as_secs_f64(),
        deg.iter().sum::<u64>(),
        2 * cfg.expected_edges()
    );
    assert_eq!(deg.iter().sum::<u64>(), 2 * cfg.expected_edges());
    let _ = edge_total;

    let stats = pa_graph::degrees::degree_stats(&deg).unwrap();
    println!(
        "degrees: min {}, mean {:.2}, max {}",
        stats.min, stats.mean, stats.max
    );
    let fit = powerlaw::fit_mle(&deg, 2 * cfg.x);
    println!(
        "power law: gamma = {:.3} over {} tail nodes — without ever \
         holding an edge list",
        fit.gamma, fit.tail_samples
    );
}
