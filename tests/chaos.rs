//! Chaos suite: the engines under a hostile transport.
//!
//! Every run here routes all traffic through a seeded
//! [`pa_mpsim::FaultTransport`] that delays, reorders (cross-pair),
//! duplicates, and drops-with-recovery packets. The invariant is the
//! strongest the repo has: the emitted edge set must be **bit-identical
//! to the fault-free run**, pinned by the same FNV-1a oracles the
//! determinism suite carries — not merely self-consistent. A fault
//! schedule that changed a single edge would change the fingerprint.
//!
//! The last test flips recovery off and checks the failure mode: a
//! permanently lost message must trip the stall watchdog with a
//! progress report, not hang the run.

use std::time::Duration;

use pa_core::{par, partition::Scheme, FaultPlan, GenOptions, PaConfig};

/// The PR-1 fingerprints from `tests/determinism.rs`: the fault-free
/// oracle every chaos schedule must reproduce.
const ORACLE_X1: u64 = 0xdefa6458a590e3ba;
const ORACLE_X4: u64 = 0x66b9ce422f65dc31;

fn cfg_x1() -> PaConfig {
    PaConfig::new(3_000, 1).with_seed(41)
}

fn cfg_x4() -> PaConfig {
    PaConfig::new(3_000, 4).with_seed(41)
}

/// FNV-1a over the canonicalized edge list (same as `determinism.rs`).
fn fnv1a(edges: &pa_graph::EdgeList) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for (u, v) in edges.iter() {
        for b in u.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Chaos runs use small buffers and a short service interval so packets
/// are plentiful (more fault opportunities), plus a generous watchdog:
/// recovering plans must never stall, and if one does we want a report
/// rather than a hung CI job.
fn chaos_opts(plan: FaultPlan) -> GenOptions {
    GenOptions {
        buffer_capacity: 32,
        service_interval: 16,
        ..GenOptions::default()
    }
    .with_fault_plan(plan)
    .with_stall_timeout(Duration::from_secs(120))
}

/// Fault seeds 0..8: even seeds run the light profile, odd the
/// aggressive one, so the matrix covers both noise levels.
fn plan_for(fault_seed: u64) -> FaultPlan {
    if fault_seed.is_multiple_of(2) {
        FaultPlan::light(fault_seed)
    } else {
        FaultPlan::aggressive(fault_seed)
    }
}

/// The ISSUE-3 matrix, one rank count per test function (so the suite
/// parallelizes): schemes × 8 fault seeds, x = 1 and x = 4, each
/// asserting termination and the fault-free fingerprint.
fn chaos_matrix(nranks: usize) {
    let cfg1 = cfg_x1();
    let cfg4 = cfg_x4();
    for scheme in Scheme::ALL {
        for fault_seed in 0..8 {
            let opts = chaos_opts(plan_for(fault_seed));
            let x1 = par::generate_x1(&cfg1, scheme, nranks, &opts);
            assert_eq!(
                fnv1a(&x1.edge_list().canonicalized()),
                ORACLE_X1,
                "x=1 edge set diverged under faults: P={nranks} {scheme} fault_seed={fault_seed}"
            );
            let x4 = par::generate(&cfg4, scheme, nranks, &opts);
            assert_eq!(
                fnv1a(&x4.edge_list().canonicalized()),
                ORACLE_X4,
                "x=4 edge set diverged under faults: P={nranks} {scheme} fault_seed={fault_seed}"
            );
        }
    }
}

#[test]
fn chaos_matrix_p2() {
    chaos_matrix(2);
}

#[test]
fn chaos_matrix_p4() {
    chaos_matrix(4);
}

#[test]
fn chaos_matrix_p8() {
    chaos_matrix(8);
}

#[test]
fn engine3_survives_chaos_without_sending_anything() {
    // Engine3 gives the fault injector nothing to chew on: its only
    // traffic is the driver's collectives. The fingerprint must still
    // hold under every plan, and the comm ledger must show zero
    // point-to-point messages — faulted or not.
    let cfg4 = cfg_x4();
    for scheme in Scheme::EXTENDED {
        for fault_seed in 0..4 {
            let opts = chaos_opts(plan_for(fault_seed));
            let out = par::generate3(&cfg4, scheme, 4, &opts);
            assert_eq!(
                fnv1a(&out.edge_list().canonicalized()),
                ORACLE_X4,
                "engine3 edge set diverged under faults: {scheme} fault_seed={fault_seed}"
            );
            for r in &out.ranks {
                assert_eq!(
                    r.comm.msgs_sent, 0,
                    "engine3 sent point-to-point traffic: {scheme} fault_seed={fault_seed}"
                );
                assert_eq!(r.comm.msgs_recv, 0);
            }
        }
    }
}

#[test]
fn faults_are_actually_injected_and_recovered() {
    // Guard against the suite silently testing nothing: an aggressive
    // plan over a multi-rank run must inject faults, recover drops, and
    // dedup spurious retransmissions — and the engines must see (and
    // discard) stale duplicates. The hub cache is disabled because at
    // n = 3000 every node is a hub under the default cache size, so
    // nearly all traffic would be broadcast messages whose duplicates
    // are absorbed without ever hitting the stale-resolution guards.
    let opts = chaos_opts(FaultPlan::aggressive(3)).without_hub_cache();
    let out = par::generate(&cfg_x4(), Scheme::Rrp, 4, &opts);
    let comm: pa_mpsim::CommStats =
        out.ranks
            .iter()
            .fold(pa_mpsim::CommStats::new(4), |mut acc, r| {
                acc.merge(&r.comm);
                acc
            });
    assert!(comm.faults_injected > 0, "no faults injected");
    assert!(comm.retransmitted > 0, "no drop was recovered");
    assert!(comm.deduped > 0, "no spurious retransmission deduped");
    let stale = out.total_counters().stale_resolutions;
    assert!(
        stale > 0,
        "aggressive duplication surfaced no stale resolutions to the engines"
    );
}

#[test]
fn clean_runs_report_zero_fault_counters() {
    let out = par::generate(&cfg_x4(), Scheme::Rrp, 4, &GenOptions::default());
    for r in &out.ranks {
        assert_eq!(r.comm.faults_injected, 0);
        assert_eq!(r.comm.retransmitted, 0);
        assert_eq!(r.comm.deduped, 0);
        assert_eq!(r.counters.stale_resolutions, 0);
    }
}

#[test]
fn hub_cache_off_still_survives_chaos() {
    // Without the hub cache every low-label lookup is a request/resolved
    // round trip — far more wire traffic to perturb.
    let opts = chaos_opts(FaultPlan::aggressive(5)).without_hub_cache();
    let out = par::generate(&cfg_x4(), Scheme::Ucp, 4, &opts);
    assert_eq!(fnv1a(&out.edge_list().canonicalized()), ORACLE_X4);
}

#[test]
fn unacked_drop_trips_the_stall_watchdog_not_a_hang() {
    // Recovery off: every fourth packet vanishes permanently. The run
    // cannot finish; the acceptance criterion is that the stall watchdog
    // reports — with the rank's progress state — instead of hanging.
    let cfg = PaConfig::new(2_000, 1).with_seed(3);
    let opts = GenOptions::default()
        .with_fault_plan(FaultPlan::drop_without_recovery(7))
        .with_stall_timeout(Duration::from_secs(2));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        par::generate_x1(&cfg, Scheme::Rrp, 2, &opts)
    }));
    let payload = result.expect_err("lost messages with recovery off must trip the watchdog");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic payload>".into());
    assert!(
        msg.contains("stall watchdog"),
        "expected a stall-watchdog report, got: {msg}"
    );
    assert!(
        msg.contains("outstanding work"),
        "watchdog report should include the outstanding-work count: {msg}"
    );
}
