//! Cross-configuration agreement: the generated network must not depend
//! on how it was parallelized.

use pa_core::{par, partition::Scheme, seq, GenOptions, PaConfig};
use pa_graph::degrees;

fn opts() -> GenOptions {
    GenOptions {
        buffer_capacity: 64,
        service_interval: 16,
    }
}

#[test]
fn x1_network_is_identical_for_every_world_shape() {
    // The strongest invariant in the suite: for x = 1 there are no
    // duplicate retries, so the edge set is a pure function of the seed.
    let cfg = PaConfig::new(5_000, 1).with_seed(123);
    let reference = seq::copy_model(&cfg).canonicalized();
    for nranks in [1usize, 2, 4, 8, 16] {
        for scheme in Scheme::ALL {
            let via31 = par::generate_x1(&cfg, scheme, nranks, &opts());
            assert_eq!(
                via31.edge_list().canonicalized(),
                reference,
                "Alg 3.1: P={nranks} {scheme}"
            );
            let via32 = par::generate(&cfg, scheme, nranks, &opts());
            assert_eq!(
                via32.edge_list().canonicalized(),
                reference,
                "Alg 3.2: P={nranks} {scheme}"
            );
        }
    }
}

#[test]
fn x1_invariance_holds_for_other_p_values() {
    for p in [0.1f64, 0.9] {
        let cfg = PaConfig::new(3_000, 1).with_p(p).with_seed(7);
        let reference = seq::copy_model(&cfg).canonicalized();
        let out = par::generate_x1(&cfg, Scheme::Rrp, 6, &opts());
        assert_eq!(out.edge_list().canonicalized(), reference, "p = {p}");
    }
}

#[test]
fn general_x_degree_distributions_agree_across_worlds() {
    // For x > 1 late-duplicate resolution is timing-dependent (as in the
    // paper's MPI code), so we require statistical, not bitwise,
    // agreement: identical edge counts and closely matching degree
    // tails between P = 1 (= sequential) and a parallel run.
    let cfg = PaConfig::new(20_000, 4).with_seed(31);
    let a = par::generate(&cfg, Scheme::Ucp, 1, &opts()).edge_list();
    let b = par::generate(&cfg, Scheme::Rrp, 8, &opts()).edge_list();
    assert_eq!(a.len(), b.len());

    let da = degrees::degree_sequence(cfg.n as usize, &a);
    let db = degrees::degree_sequence(cfg.n as usize, &b);
    // Timing-dependence only reroutes a handful of duplicate retries, so
    // the overwhelming majority of attachments are identical.
    let same = da.iter().zip(&db).filter(|(x, y)| x == y).count();
    assert!(
        same as f64 > 0.99 * cfg.n as f64,
        "degree sequences should agree on >99% of nodes, got {same}/{}",
        cfg.n
    );
    // And the aggregate distribution is essentially the same.
    let sa = degrees::degree_stats(&da).unwrap();
    let sb = degrees::degree_stats(&db).unwrap();
    assert_eq!(sa.mean, sb.mean);
    assert!((sa.max as f64 / sb.max as f64 - 1.0).abs() < 0.2);
}

#[test]
fn seed_changes_the_network_but_structure_remains() {
    let base = PaConfig::new(2_000, 2).with_seed(1);
    let other = PaConfig::new(2_000, 2).with_seed(2);
    let a = par::generate(&base, Scheme::Rrp, 4, &opts()).edge_list();
    let b = par::generate(&other, Scheme::Rrp, 4, &opts()).edge_list();
    assert_ne!(a.canonicalized(), b.canonicalized());
    assert_eq!(a.len(), b.len());
}

#[test]
fn service_interval_does_not_change_x1_output() {
    let cfg = PaConfig::new(2_000, 1).with_seed(55);
    let reference = seq::copy_model(&cfg).canonicalized();
    for interval in [1usize, 7, 1024] {
        let out = par::generate_x1(
            &cfg,
            Scheme::Ucp,
            4,
            &GenOptions {
                buffer_capacity: 32,
                service_interval: interval,
            },
        );
        assert_eq!(
            out.edge_list().canonicalized(),
            reference,
            "service_interval = {interval}"
        );
    }
}
