//! Cross-configuration agreement: the generated network must not depend
//! on how it was parallelized.

use pa_core::{par, partition::Scheme, seq, GenOptions, PaConfig};
use pa_graph::degrees;

fn opts() -> GenOptions {
    GenOptions {
        buffer_capacity: 64,
        service_interval: 16,
        ..GenOptions::default()
    }
}

#[test]
fn x1_network_is_identical_for_every_world_shape() {
    // The strongest invariant in the suite: for x = 1 there are no
    // duplicate retries, so the edge set is a pure function of the seed.
    let cfg = PaConfig::new(5_000, 1).with_seed(123);
    let reference = seq::copy_model(&cfg).canonicalized();
    for nranks in [1usize, 2, 4, 8, 16] {
        for scheme in Scheme::ALL {
            let via31 = par::generate_x1(&cfg, scheme, nranks, &opts());
            assert_eq!(
                via31.edge_list().canonicalized(),
                reference,
                "Alg 3.1: P={nranks} {scheme}"
            );
            let via32 = par::generate(&cfg, scheme, nranks, &opts());
            assert_eq!(
                via32.edge_list().canonicalized(),
                reference,
                "Alg 3.2: P={nranks} {scheme}"
            );
        }
    }
}

#[test]
fn x1_invariance_holds_for_other_p_values() {
    for p in [0.1f64, 0.9] {
        let cfg = PaConfig::new(3_000, 1).with_p(p).with_seed(7);
        let reference = seq::copy_model(&cfg).canonicalized();
        let out = par::generate_x1(&cfg, Scheme::Rrp, 6, &opts());
        assert_eq!(out.edge_list().canonicalized(), reference, "p = {p}");
    }
}

#[test]
fn general_x_edge_sets_are_identical_across_worlds() {
    // Under in-order slot commits every attempt observes exactly the
    // state the sequential generator would, so even for x > 1 the edge
    // set is a pure function of the seed — bitwise identical for every
    // world shape, not merely statistically close.
    let cfg = PaConfig::new(20_000, 4).with_seed(31);
    let reference = par::generate(&cfg, Scheme::Ucp, 1, &opts())
        .edge_list()
        .canonicalized();
    let b = par::generate(&cfg, Scheme::Rrp, 8, &opts())
        .edge_list()
        .canonicalized();
    assert_eq!(reference, b);

    let da = degrees::degree_sequence(cfg.n as usize, &reference);
    let sa = degrees::degree_stats(&da).unwrap();
    assert_eq!(sa.mean, 2.0 * reference.len() as f64 / cfg.n as f64);
}

#[test]
fn seed_changes_the_network_but_structure_remains() {
    let base = PaConfig::new(2_000, 2).with_seed(1);
    let other = PaConfig::new(2_000, 2).with_seed(2);
    let a = par::generate(&base, Scheme::Rrp, 4, &opts()).edge_list();
    let b = par::generate(&other, Scheme::Rrp, 4, &opts()).edge_list();
    assert_ne!(a.canonicalized(), b.canonicalized());
    assert_eq!(a.len(), b.len());
}

#[test]
fn service_interval_does_not_change_x1_output() {
    let cfg = PaConfig::new(2_000, 1).with_seed(55);
    let reference = seq::copy_model(&cfg).canonicalized();
    for interval in [1usize, 7, 1024] {
        let out = par::generate_x1(
            &cfg,
            Scheme::Ucp,
            4,
            &GenOptions {
                buffer_capacity: 32,
                service_interval: interval,
                ..GenOptions::default()
            },
        );
        assert_eq!(
            out.edge_list().canonicalized(),
            reference,
            "service_interval = {interval}"
        );
    }
}
