//! Reproducibility guarantees across the whole stack.

use pa_core::{er, par, partition::Scheme, seq, ws, GenOptions, PaConfig};
use pa_rng::Xoshiro256pp;

#[test]
fn repeated_parallel_runs_are_identical_for_x1() {
    let cfg = PaConfig::new(4_000, 1).with_seed(5);
    let a = par::generate_x1(&cfg, Scheme::Rrp, 6, &GenOptions::default());
    let b = par::generate_x1(&cfg, Scheme::Rrp, 6, &GenOptions::default());
    // Commit *order* within a rank depends on message timing, but the
    // edge *set* is a pure function of the seed.
    assert_eq!(a.edge_list().canonicalized(), b.edge_list().canonicalized());
}

#[test]
fn repeated_single_rank_runs_are_identical_for_any_x() {
    for x in [2u64, 5] {
        let cfg = PaConfig::new(3_000, x).with_seed(5);
        let a = par::generate(&cfg, Scheme::Ucp, 1, &GenOptions::default());
        let b = par::generate(&cfg, Scheme::Ucp, 1, &GenOptions::default());
        assert_eq!(a.edge_list(), b.edge_list());
        assert_eq!(a.edge_list(), seq::copy_model(&cfg));
    }
}

#[test]
fn parallel_x_gt_1_edge_set_is_a_pure_function_of_the_seed() {
    // In-order slot commits give every attempt the sequential generator's
    // exact visibility, so for any x the edge set equals the sequential
    // copy model bit-for-bit — for every rank count, every scheme, and
    // with the hub cache on or off.
    let cfg = PaConfig::new(5_000, 4).with_seed(8);
    let reference = seq::copy_model(&cfg).canonicalized();
    for nranks in [1usize, 2, 4, 8] {
        for scheme in Scheme::ALL {
            for (label, opts) in [
                ("hub on", GenOptions::default()),
                ("hub off", GenOptions::default().without_hub_cache()),
            ] {
                let out = par::generate(&cfg, scheme, nranks, &opts);
                assert_eq!(
                    out.edge_list().canonicalized(),
                    reference,
                    "x=4 must be bit-identical: P={nranks} {scheme} ({label})"
                );
            }
        }
    }
}

#[test]
fn hub_cache_size_never_changes_the_network() {
    // Sweep cache sizes from empty through full replication: the cache
    // only short-circuits request/resolved round trips with already
    // committed values, so the output must be untouched.
    let cfg = PaConfig::new(4_000, 3).with_seed(19);
    let reference = seq::copy_model(&cfg).canonicalized();
    for hub_nodes in [0u64, 1, 64, 1_000, 4_000] {
        let opts = GenOptions::default().with_hub_cache(hub_nodes);
        let out = par::generate(&cfg, Scheme::Ucp, 4, &opts);
        assert_eq!(
            out.edge_list().canonicalized(),
            reference,
            "hub_cache_nodes = {hub_nodes}"
        );
    }
}

/// FNV-1a over the canonicalized edge list — the fingerprint used to
/// snapshot the pre-unification engines' output.
fn fnv1a(edges: &pa_graph::EdgeList) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for (u, v) in edges.iter() {
        for b in u.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[test]
fn unified_driver_reproduces_pre_unification_oracle_hashes() {
    // These fingerprints were captured from the PR-1 codebase, where
    // Algorithms 3.1 and 3.2 each carried their own hand-written
    // service/flush/park loop (engine1/engine2), before both were folded
    // into the shared driver. Every engine, scheme and rank count agreed
    // on them — so the unified driver must keep producing exactly these
    // edge sets, not merely internally consistent ones.
    const ORACLE_X1: u64 = 0xdefa6458a590e3ba;
    const ORACLE_X4: u64 = 0x66b9ce422f65dc31;
    let cfg1 = PaConfig::new(3_000, 1).with_seed(41);
    let cfg4 = PaConfig::new(3_000, 4).with_seed(41);
    assert_eq!(fnv1a(&seq::copy_model(&cfg1).canonicalized()), ORACLE_X1);
    assert_eq!(fnv1a(&seq::copy_model(&cfg4).canonicalized()), ORACLE_X4);
    for nranks in [1usize, 2, 8] {
        for scheme in Scheme::ALL {
            let opts = GenOptions::default();
            let x1 = par::generate_x1(&cfg1, scheme, nranks, &opts);
            assert_eq!(
                fnv1a(&x1.edge_list().canonicalized()),
                ORACLE_X1,
                "x=1 path drifted from the PR-1 oracle: P={nranks} {scheme}"
            );
            let gen1 = par::generate(&cfg1, scheme, nranks, &opts);
            assert_eq!(
                fnv1a(&gen1.edge_list().canonicalized()),
                ORACLE_X1,
                "general path (x=1) drifted from the PR-1 oracle: P={nranks} {scheme}"
            );
            let gen4 = par::generate(&cfg4, scheme, nranks, &opts);
            assert_eq!(
                fnv1a(&gen4.edge_list().canonicalized()),
                ORACLE_X4,
                "general path (x=4) drifted from the PR-1 oracle: P={nranks} {scheme}"
            );
        }
    }
}

#[test]
fn engine3_reproduces_pre_unification_oracle_hashes() {
    // Engine3 never exchanges a single request/resolved message, yet it
    // must land on exactly the PR-1 fingerprints the message-passing
    // engines are pinned to — for every rank count and every scheme the
    // workspace implements (including block-cyclic, which the paper's
    // engines never ran under).
    const ORACLE_X1: u64 = 0xdefa6458a590e3ba;
    const ORACLE_X4: u64 = 0x66b9ce422f65dc31;
    let cfg1 = PaConfig::new(3_000, 1).with_seed(41);
    let cfg4 = PaConfig::new(3_000, 4).with_seed(41);
    for nranks in [1usize, 2, 4, 8] {
        for scheme in Scheme::EXTENDED {
            let opts = GenOptions::default();
            let gen1 = par::generate3(&cfg1, scheme, nranks, &opts);
            assert_eq!(
                fnv1a(&gen1.edge_list().canonicalized()),
                ORACLE_X1,
                "engine3 (x=1) drifted from the PR-1 oracle: P={nranks} {scheme}"
            );
            let gen4 = par::generate3(&cfg4, scheme, nranks, &opts);
            assert_eq!(
                fnv1a(&gen4.edge_list().canonicalized()),
                ORACLE_X4,
                "engine3 (x=4) drifted from the PR-1 oracle: P={nranks} {scheme}"
            );
        }
    }
}

#[test]
fn sequential_generators_are_deterministic() {
    let cfg = PaConfig::new(2_000, 3).with_seed(77);
    assert_eq!(seq::copy_model(&cfg), seq::copy_model(&cfg));
    assert_eq!(
        seq::batagelj_brandes(&cfg, &mut Xoshiro256pp::new(1)),
        seq::batagelj_brandes(&cfg, &mut Xoshiro256pp::new(1))
    );
    assert_eq!(
        seq::naive(&cfg, &mut Xoshiro256pp::new(1)),
        seq::naive(&cfg, &mut Xoshiro256pp::new(1))
    );
}

#[test]
fn extension_generators_are_deterministic() {
    let ercfg = er::ErConfig::new(3_000, 0.01).with_seed(4);
    assert_eq!(er::generate_seq(&ercfg), er::generate_seq(&ercfg));
    assert_eq!(
        er::generate_par(&ercfg, 4).canonicalized(),
        er::generate_seq(&ercfg).canonicalized()
    );
    let wscfg = ws::WsConfig::new(1_000, 4, 0.3);
    assert_eq!(
        ws::generate(&wscfg, &mut Xoshiro256pp::new(2)).canonicalized(),
        ws::generate(&wscfg, &mut Xoshiro256pp::new(2)).canonicalized()
    );
}

#[test]
fn draw_streams_are_stable_across_releases() {
    // Pin a few concrete draw values: if the RNG pipeline ever changes,
    // every "bit-identical across P" guarantee silently becomes
    // "identical to a different network", so fail loudly here instead.
    let c = seq::draw_choice(0, 0.5, 1, 2, 0, 0);
    assert_eq!(c.k, 1, "draw pipeline changed");
    let c = seq::draw_choice(42, 0.5, 4, 100, 1, 0);
    assert!(c.k >= 4 && c.k < 100);
    let again = seq::draw_choice(42, 0.5, 4, 100, 1, 0);
    assert_eq!(c, again);
}
