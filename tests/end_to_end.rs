//! End-to-end integration: generate in parallel, validate, analyze,
//! round-trip through I/O — every crate in one pipeline.

use pa_analysis::powerlaw;
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_graph::{degrees, io, validate, Csr, EdgeList};

#[test]
fn full_pipeline_produces_an_analyzable_scale_free_network() {
    let cfg = PaConfig::new(30_000, 4).with_seed(42);
    let out = par::generate(&cfg, Scheme::Rrp, 6, &GenOptions::default());
    let edges = out.edge_list();

    // Structure.
    validate::assert_valid_pa_network(cfg.n, cfg.x, &edges);
    let csr = Csr::from_edges(cfg.n as usize, &edges);
    assert_eq!(csr.connected_components(), 1, "PA networks are connected");

    // Degrees: handshake lemma and minimum degree x for attaching nodes.
    let deg = degrees::degree_sequence(cfg.n as usize, &edges);
    assert_eq!(deg.iter().sum::<u64>(), 2 * edges.len() as u64);
    let stats = degrees::degree_stats(&deg).unwrap();
    assert!((stats.mean - 2.0 * cfg.x as f64).abs() < 0.01);

    // Heavy tail with a plausible exponent.
    let fit = powerlaw::fit_mle(&deg, 8);
    assert!(
        (2.0..4.0).contains(&fit.gamma),
        "gamma = {} outside plausible band",
        fit.gamma
    );

    // I/O round-trip (binary and text).
    let mut bin = Vec::new();
    io::write_binary(&mut bin, &edges).unwrap();
    assert_eq!(io::read_binary(&bin[..]).unwrap(), edges);
    let mut txt = Vec::new();
    io::write_text(&mut txt, &edges).unwrap();
    assert_eq!(io::read_text(&txt[..]).unwrap(), edges);
}

#[test]
fn per_rank_edges_partition_the_network() {
    // Every edge is emitted by exactly one rank: the owner of the node
    // that created it.
    let cfg = PaConfig::new(5_000, 3).with_seed(9);
    let out = par::generate(&cfg, Scheme::Lcp, 5, &GenOptions::default());
    let part = pa_core::partition::build(Scheme::Lcp, cfg.n, 5);
    use pa_core::partition::Partition;
    for r in &out.ranks {
        for (u, _) in r.edges.iter() {
            assert_eq!(
                part.rank_of(u),
                r.rank,
                "edge source {u} emitted by wrong rank"
            );
        }
    }
    let merged: usize = out.ranks.iter().map(|r| r.edges.len()).sum();
    assert_eq!(merged as u64, cfg.expected_edges());
}

#[test]
fn analysis_pipeline_on_all_three_generators() {
    // The three sequential algorithms produce statistically similar
    // networks: same edge count, same mean degree, hubs in all three.
    let cfg = PaConfig::new(4_000, 3).with_seed(5);
    let mut rng = pa_rng::Xoshiro256pp::new(5);
    let nets: Vec<(&str, EdgeList)> = vec![
        ("naive", pa_core::seq::naive(&cfg, &mut rng)),
        (
            "batagelj_brandes",
            pa_core::seq::batagelj_brandes(&cfg, &mut rng),
        ),
        ("copy_model", pa_core::seq::copy_model(&cfg)),
    ];
    for (name, edges) in &nets {
        assert_eq!(
            edges.len() as u64,
            cfg.expected_edges(),
            "{name}: edge count"
        );
        validate::assert_valid_pa_network(cfg.n, cfg.x, edges);
        let deg = degrees::degree_sequence(cfg.n as usize, edges);
        let stats = degrees::degree_stats(&deg).unwrap();
        assert!(
            stats.max as f64 > 8.0 * stats.mean,
            "{name}: expected hubs, max {} mean {}",
            stats.max,
            stats.mean
        );
    }
}

#[test]
fn extension_generators_compose_with_the_same_toolkit() {
    // Erdős–Rényi and Watts–Strogatz share the substrates.
    let er = pa_core::er::generate_par(&pa_core::er::ErConfig::new(2_000, 0.005).with_seed(3), 4);
    assert!(validate::check_simple(2_000, &er).is_empty());

    let ws = pa_core::ws::generate(
        &pa_core::ws::WsConfig::new(2_000, 6, 0.1),
        &mut pa_rng::Xoshiro256pp::new(1),
    );
    assert!(validate::check_simple(2_000, &ws).is_empty());
    let csr = Csr::from_edges(2_000, &ws);
    assert_eq!(csr.connected_components(), 1);
}
