//! Replicated hub cache: exactness and traffic-reduction guarantees.
//!
//! The cache replicates the first `H` nodes' attachment slots on every
//! rank. Because entries are only ever *committed* values broadcast by
//! their owners, consuming one is indistinguishable from receiving the
//! `resolved` message the request path would have produced — so the
//! edge set must be bit-identical with the cache on or off, while the
//! request traffic to low-label (hub) nodes collapses.

use pa_core::{par, partition::Scheme, seq, GenOptions, PaConfig};

fn total_requests(out: &par::ParallelOutput) -> u64 {
    out.total_counters().requests_sent
}

#[test]
fn hub_cache_cuts_request_traffic_without_changing_the_network() {
    // UCP concentrates hub ownership (and thus request floods) on the
    // low ranks — the regime the cache is designed for.
    let cfg = PaConfig::new(60_000, 4).with_seed(42);
    let nranks = 8;

    let off = par::generate(
        &cfg,
        Scheme::Ucp,
        nranks,
        &GenOptions::default().without_hub_cache(),
    );
    let on = par::generate(
        &cfg,
        Scheme::Ucp,
        nranks,
        &GenOptions::default().with_hub_cache(cfg.n / 4),
    );

    // Exactness: same network as the uncached run and the sequential
    // oracle, bit for bit.
    let reference = seq::copy_model(&cfg).canonicalized();
    assert_eq!(off.edge_list().canonicalized(), reference);
    assert_eq!(on.edge_list().canonicalized(), reference);

    // The cache must actually be exercised on both sides of the wire.
    let totals = on.total_counters();
    assert!(totals.hub_hits > 0, "no lookups were served by the cache");
    assert!(totals.hub_updates > 0, "no broadcasts were installed");
    let off_totals = off.total_counters();
    assert_eq!(off_totals.hub_hits, 0);
    assert_eq!(off_totals.hub_updates, 0);

    // Traffic: caching a quarter of the label space covers well over
    // half of all copy lookups (the copy walk is biased toward low
    // labels), so requests must drop by at least 30%.
    let req_off = total_requests(&off);
    let req_on = total_requests(&on);
    assert!(
        (req_on as f64) <= 0.7 * req_off as f64,
        "hub cache saved too little: {req_on} vs {req_off} requests"
    );
}

#[test]
fn hub_cache_is_inert_on_a_single_rank() {
    // With one rank every lookup is local; the cache must neither
    // activate nor perturb the exact sequential equivalence.
    let cfg = PaConfig::new(5_000, 3).with_seed(7);
    let out = par::generate(
        &cfg,
        Scheme::Ucp,
        1,
        &GenOptions::default().with_hub_cache(cfg.n),
    );
    let totals = out.total_counters();
    assert_eq!(totals.hub_hits, 0);
    assert_eq!(totals.hub_updates, 0);
    assert_eq!(out.edge_list(), seq::copy_model(&cfg));
}

#[test]
fn full_replication_is_still_exact() {
    // H = n replicates every slot; requests only remain for values whose
    // broadcasts have not arrived yet. Output must be untouched.
    let cfg = PaConfig::new(8_000, 4).with_seed(11);
    let out = par::generate(
        &cfg,
        Scheme::Rrp,
        4,
        &GenOptions::default().with_hub_cache(cfg.n),
    );
    assert_eq!(
        out.edge_list().canonicalized(),
        seq::copy_model(&cfg).canonicalized()
    );
    assert!(out.total_counters().hub_hits > 0);
}
