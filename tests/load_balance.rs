//! Load-balance integration tests: the Figure 7 orderings must hold.

use pa_analysis::stats;
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};

/// Figure 7 characterizes the *uncached* request/resolved protocol, so
/// these tests disable the hub cache (which exists precisely to remove
/// the traffic they measure).
fn opts() -> GenOptions {
    GenOptions::default().without_hub_cache()
}

fn loads(scheme: Scheme, cfg: &PaConfig, ranks: usize) -> Vec<f64> {
    let out = par::generate(cfg, scheme, ranks, &opts());
    assert_eq!(out.total_edges() as u64, cfg.expected_edges());
    out.ranks
        .iter()
        .map(|r| r.load().paper_load() as f64)
        .collect()
}

#[test]
fn rrp_balances_better_than_ucp() {
    let cfg = PaConfig::new(40_000, 6).with_seed(3);
    let ranks = 16;
    let ucp = stats::imbalance(&loads(Scheme::Ucp, &cfg, ranks));
    let rrp = stats::imbalance(&loads(Scheme::Rrp, &cfg, ranks));
    assert!(
        rrp < ucp,
        "RRP imbalance {rrp:.2} must beat UCP {ucp:.2} (Figure 7d)"
    );
    assert!(rrp < 1.3, "RRP should be near-perfect, got {rrp:.2}");
}

#[test]
fn lcp_balances_better_than_ucp() {
    let cfg = PaConfig::new(40_000, 6).with_seed(3);
    let ranks = 16;
    let ucp = stats::imbalance(&loads(Scheme::Ucp, &cfg, ranks));
    let lcp = stats::imbalance(&loads(Scheme::Lcp, &cfg, ranks));
    assert!(
        lcp < ucp,
        "LCP imbalance {lcp:.2} must beat UCP {ucp:.2} (Figure 7d)"
    );
}

#[test]
fn ucp_incoming_requests_decrease_with_rank() {
    // Figure 7(c): under consecutive partitioning, low ranks receive far
    // more requests (Lemma 3.4).
    let cfg = PaConfig::new(40_000, 6).with_seed(3);
    let out = par::generate(&cfg, Scheme::Ucp, 8, &opts());
    let incoming: Vec<u64> = out
        .ranks
        .iter()
        .map(|r| r.counters.requests_served + r.counters.requests_queued)
        .collect();
    assert!(
        incoming[0] > 4 * incoming[7].max(1),
        "rank 0 should be flooded: {incoming:?}"
    );
    // Broad monotone decline (allow local noise between adjacent ranks).
    assert!(
        incoming[0] > incoming[3] && incoming[3] > incoming[7],
        "{incoming:?}"
    );
}

#[test]
fn ucp_rank_zero_sends_no_requests() {
    // §4.6.2: "processor 0 does not need to send any request messages at
    // all" — all its lookups are for lower-labelled nodes it owns itself.
    let cfg = PaConfig::new(10_000, 4).with_seed(1);
    let out = par::generate(&cfg, Scheme::Ucp, 8, &opts());
    let r0 = &out.ranks[0];
    assert_eq!(r0.counters.requests_sent, 0);
    // Everything rank 0 *does* send is a resolved response: one per
    // incoming request, whether answered immediately or after queueing.
    assert_eq!(
        r0.comm.msgs_sent,
        r0.counters.requests_served + r0.counters.requests_queued
    );
    // Rank 0 resolves its copy lookups locally (they all target its own
    // lower-labelled nodes, already committed by the ascending sweep).
    assert!(r0.counters.local_immediate > 0);
    assert_eq!(r0.counters.local_deferred, 0);
}

#[test]
fn outgoing_requests_proportional_to_partition_size() {
    // §4.6.2: expected outgoing requests ≈ (1−p)·x per node, so a rank's
    // outgoing traffic tracks its node count (UCP: all roughly equal
    // except rank 0's locality advantage).
    let cfg = PaConfig::new(40_000, 6).with_seed(3);
    let out = par::generate(&cfg, Scheme::Rrp, 8, &opts());
    let per_node: Vec<f64> = out
        .ranks
        .iter()
        .map(|r| r.counters.requests_sent as f64 / r.counters.nodes as f64)
        .collect();
    let expect = (1.0 - cfg.p) * cfg.x as f64;
    for (rank, &v) in per_node.iter().enumerate() {
        assert!(
            v <= expect * 1.05,
            "rank {rank}: outgoing/node {v:.2} above the (1-p)x = {expect} bound"
        );
        // Remote fraction under RRP with P = 8 is 7/8, so the measured
        // rate should be near (not far below) the bound.
        assert!(
            v >= expect * 0.7,
            "rank {rank}: outgoing/node {v:.2} unexpectedly low"
        );
    }
}
