//! Model-conformance suite: nonlinear PA (nlpa) across the whole stack,
//! plus the strategy/hub-cache conformance contract.
//!
//! The nlpa fingerprints below were captured from the sequential oracle
//! (`seq::nlpa`) the day the model landed; every parallel path — both
//! engines, every scheme, every rank count, chaos transports, and
//! checkpoint/restart — must keep reproducing them bit-for-bit. At
//! `α = 1.0` the model is defined to be *exactly* the classical copy
//! model, so those rows re-use the PR-1 PA oracles from
//! `tests/determinism.rs` verbatim.

use std::time::Duration;

use pa_core::{par, partition, partition::Scheme, seq, FaultPlan, GenOptions, PaConfig};
use pa_graph::EdgeList;
use pa_mpsim::World;

/// The PR-1 PA fingerprints (see `tests/determinism.rs`): nlpa at
/// `α = 1.0` must land on these, not merely on a self-consistent hash.
const ORACLE_X1: u64 = 0xdefa6458a590e3ba;
const ORACLE_X4: u64 = 0x66b9ce422f65dc31;

/// `(alpha, x = 1 fingerprint, x = 4 fingerprint)` over
/// `PaConfig::new(3000, x).with_seed(41)` — the same workload the PA
/// oracles pin.
const NLPA_PINS: [(f64, u64, u64); 3] = [
    (0.5, 0x108c9312fdc74d0a, 0xbc1069902cb6321d),
    (1.0, ORACLE_X1, ORACLE_X4),
    (1.5, 0xc7356a0448f3cb61, 0x5fd6a4040af24989),
];

fn cfg_x1() -> PaConfig {
    PaConfig::new(3_000, 1).with_seed(41)
}

fn cfg_x4() -> PaConfig {
    PaConfig::new(3_000, 4).with_seed(41)
}

/// FNV-1a over the canonicalized edge list (same as `determinism.rs`).
fn fnv1a(edges: &pa_graph::EdgeList) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for (u, v) in edges.iter() {
        for b in u.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[test]
fn nlpa_sequential_oracle_fingerprints_are_pinned() {
    for (alpha, pin1, pin4) in NLPA_PINS {
        assert_eq!(
            fnv1a(&seq::nlpa(&cfg_x1(), alpha).canonicalized()),
            pin1,
            "sequential nlpa x=1 drifted: alpha={alpha}"
        );
        assert_eq!(
            fnv1a(&seq::nlpa(&cfg_x4(), alpha).canonicalized()),
            pin4,
            "sequential nlpa x=4 drifted: alpha={alpha}"
        );
    }
}

#[test]
fn nlpa_message_passing_engines_match_the_oracle_for_every_world() {
    for (alpha, pin1, pin4) in NLPA_PINS {
        let opts = GenOptions::default().with_alpha(alpha);
        for nranks in [1usize, 2, 4] {
            for scheme in Scheme::ALL {
                let x1 = par::generate_x1(&cfg_x1(), scheme, nranks, &opts);
                assert_eq!(
                    fnv1a(&x1.edge_list().canonicalized()),
                    pin1,
                    "engine1 nlpa drifted: alpha={alpha} P={nranks} {scheme}"
                );
                let gen4 = par::generate(&cfg_x4(), scheme, nranks, &opts);
                assert_eq!(
                    fnv1a(&gen4.edge_list().canonicalized()),
                    pin4,
                    "engine2 nlpa drifted: alpha={alpha} P={nranks} {scheme}"
                );
            }
        }
    }
}

#[test]
fn nlpa_communication_free_engine_matches_the_oracle_for_every_world() {
    for (alpha, pin1, pin4) in NLPA_PINS {
        let opts = GenOptions::default().with_alpha(alpha);
        for nranks in [1usize, 2, 4] {
            for scheme in Scheme::EXTENDED {
                let gen1 = par::generate3(&cfg_x1(), scheme, nranks, &opts);
                assert_eq!(
                    fnv1a(&gen1.edge_list().canonicalized()),
                    pin1,
                    "engine3 nlpa (x=1) drifted: alpha={alpha} P={nranks} {scheme}"
                );
                let gen4 = par::generate3(&cfg_x4(), scheme, nranks, &opts);
                assert_eq!(
                    fnv1a(&gen4.edge_list().canonicalized()),
                    pin4,
                    "engine3 nlpa (x=4) drifted: alpha={alpha} P={nranks} {scheme}"
                );
            }
        }
    }
}

#[test]
fn strategies_without_hub_broadcasts_never_touch_the_hub_cache_path() {
    // The hub cache is engine2's private optimization, owned by its
    // strategy since the strategy refactor. A strategy that never
    // broadcasts hub commits must report a completely untouched hub
    // path — hits, deferrals, and updates all zero — no matter how much
    // other traffic the run generates.
    let cfg = cfg_x4();

    // Engine 3 exchanges no algorithm messages at all.
    let out = par::generate3(&cfg, Scheme::Rrp, 4, &GenOptions::default());
    for r in &out.ranks {
        assert_eq!(r.counters.hub_hits, 0, "engine3 rank {} hub hit", r.rank);
        assert_eq!(r.counters.hub_deferred, 0);
        assert_eq!(r.counters.hub_updates, 0);
    }

    // Engine 1 predates the hub cache and never consults it.
    let out = par::generate_x1(&cfg_x1(), Scheme::Rrp, 4, &GenOptions::default());
    for r in &out.ranks {
        assert_eq!(r.counters.hub_hits, 0, "engine1 rank {} hub hit", r.rank);
        assert_eq!(r.counters.hub_deferred, 0);
        assert_eq!(r.counters.hub_updates, 0);
    }

    // Engine 2 with the cache disabled must fall back to pure
    // request/resolved traffic: real remote requests, zero hub activity.
    let out = par::generate(
        &cfg,
        Scheme::Rrp,
        4,
        &GenOptions::default().without_hub_cache(),
    );
    let totals = out.total_counters();
    assert!(
        totals.requests_sent > 0,
        "hub-off multi-rank run sent no requests — the conformance check is vacuous"
    );
    assert_eq!(totals.hub_hits, 0);
    assert_eq!(totals.hub_deferred, 0);
    assert_eq!(totals.hub_updates, 0);

    // And with the cache on, the same workload must actually use it —
    // guarding against the counters being dead weight.
    let out = par::generate(&cfg, Scheme::Rrp, 4, &GenOptions::default());
    assert!(
        out.total_counters().hub_updates > 0,
        "hub cache never updated"
    );
}

/// Chaos runs use small buffers and a short service interval so packets
/// are plentiful, plus a generous watchdog (same as `tests/chaos.rs`).
fn chaos_opts(plan: FaultPlan) -> GenOptions {
    GenOptions {
        buffer_capacity: 32,
        service_interval: 16,
        ..GenOptions::default()
    }
    .with_fault_plan(plan)
    .with_stall_timeout(Duration::from_secs(120))
}

#[test]
fn nlpa_chaos_matrix() {
    // Delayed, reordered, duplicated, and dropped-with-recovery packets
    // must not move a single nlpa edge: every fault schedule reproduces
    // the fault-free fingerprint, at both a flattening and a sharpening
    // exponent, through both engines.
    for (alpha, _, pin4) in [NLPA_PINS[0], NLPA_PINS[2]] {
        for scheme in Scheme::ALL {
            for fault_seed in 0..4 {
                let plan = if fault_seed % 2 == 0 {
                    FaultPlan::light(fault_seed)
                } else {
                    FaultPlan::aggressive(fault_seed)
                };
                let opts = chaos_opts(plan).with_alpha(alpha);
                let out = par::generate(&cfg_x4(), scheme, 4, &opts);
                assert_eq!(
                    fnv1a(&out.edge_list().canonicalized()),
                    pin4,
                    "engine2 nlpa diverged under faults: alpha={alpha} {scheme} seed={fault_seed}"
                );
                let out = par::generate3(&cfg_x4(), scheme, 4, &opts);
                assert_eq!(
                    fnv1a(&out.edge_list().canonicalized()),
                    pin4,
                    "engine3 nlpa diverged under faults: alpha={alpha} {scheme} seed={fault_seed}"
                );
            }
        }
    }
}

#[test]
fn nlpa_checkpoint_resume_reproduces_the_oracle() {
    // Kill-and-resume an nlpa run mid-generation: the stitched output
    // must land on the same pinned fingerprint as the uninterrupted run,
    // and the checkpoint must carry the model identity (a PA checkpoint
    // must not resume an nlpa run — `checkpoint.rs` owns that test).
    let alpha = 1.5f64;
    let (_, _, pin4) = NLPA_PINS[2];
    let cfg = cfg_x4();
    let interval = 500u64;
    let opts = GenOptions::default()
        .with_alpha(alpha)
        .with_checkpoint_interval(interval);
    let part = partition::build(Scheme::Rrp, cfg.n, 3);
    let dir = std::env::temp_dir().join(format!("pa_models_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let meta = par::CheckpointMeta {
        world: 3,
        n: cfg.n,
        x: cfg.x,
        p_bits: cfg.p.to_bits(),
        seed: cfg.seed,
        scheme_id: 2,
        engine_id: 3,
        model_id: opts.model.id(),
        interval,
        alpha_bits: opts.model.alpha_bits(),
    };
    assert_eq!(meta.model_id, 1, "nlpa must not masquerade as pa");
    assert_eq!(meta.alpha_bits, alpha.to_bits());

    let ckpt_dir = dir.clone();
    let full: Vec<EdgeList> = World::new(3).run(|mut comm| {
        let store = par::CheckpointStore::new(&ckpt_dir, comm.rank() as u32, meta).unwrap();
        par::generate_rank3_streaming_recoverable(
            &cfg,
            &part,
            &opts,
            &mut comm,
            EdgeList::new(),
            Some(&store),
            None,
        )
        .0
    });
    assert_eq!(
        fnv1a(&EdgeList::concat(full.clone()).canonicalized()),
        pin4,
        "checkpointed nlpa run drifted from the pinned oracle"
    );

    let ckpt_dir = dir.clone();
    let resumed: Vec<EdgeList> = World::new(3).run(|mut comm| {
        let rank = comm.rank();
        let store = par::CheckpointStore::new(&ckpt_dir, rank as u32, meta).unwrap();
        let saved = store.load(store.latest().unwrap() - 1).unwrap();
        let mut sink = EdgeList::new();
        for &(u, v) in &full[rank].as_slice()[..saved.edges as usize] {
            sink.push(u, v);
        }
        par::generate_rank3_streaming_recoverable(
            &cfg,
            &part,
            &opts,
            &mut comm,
            sink,
            None,
            Some(&saved),
        )
        .0
    });
    assert_eq!(
        EdgeList::concat(resumed).canonicalized(),
        EdgeList::concat(full).canonicalized(),
        "resumed nlpa run diverged from the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
