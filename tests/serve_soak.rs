//! Soak test for `pagen serve`: a daemon under concurrent multi-tenant
//! load, driven entirely through the CLI layer (`pa_cli::run`) so the
//! whole stack — argument parsing, the pa-net protocol, the engine
//! runner, the artifact cache — is on the hook.
//!
//! `#[ignore]`d by default (it is a load test, not a unit test); ci.sh
//! runs it explicitly with `--ignored`. The fast profile keeps jobs
//! small enough to finish in seconds; three env vars scale the load for
//! longer soaks:
//!
//! - `SERVE_SOAK_SCALE=N` multiplies the large job's node count;
//! - `SERVE_SOAK_TUPLES=N` sets the number of distinct small tuples
//!   (default 12);
//! - `SERVE_SOAK_CLIENTS=N` sets the concurrent clients per tuple
//!   (default 4; every extra client exercises request coalescing).
//!
//! What it pins down:
//! - dozens of concurrent small fetches, several clients per tuple, all
//!   byte-identical to independent solo runs (engine 3 — the
//!   byte-deterministic engine — so the comparison is meaningful);
//! - a connection cap (`--max-conns 16`) well below the client count,
//!   so admission control turns the overflow away with retryable
//!   `overloaded` rejections that the clients ride out with backoff;
//! - one large job streaming concurrently with the small ones,
//!   byte-identical to its solo run;
//! - a mid-stream disconnect (deterministic, via `--stop-after-bytes`)
//!   resumed with `--resume on`, byte-identical to the uncut fetch;
//! - a clean drain afterwards: every job ran exactly once per tuple,
//!   nothing dropped, daemon exits with its stats line.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run one pagen command in-process; panic with context on failure.
fn cli(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    pa_cli::run(&argv, &mut out).unwrap_or_else(|e| panic!("pagen {} failed: {e}", args.join(" ")));
    String::from_utf8(out).unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pagen_soak_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().to_string()
}

fn wait_listening(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while std::net::TcpStream::connect(addr).is_err() {
        assert!(Instant::now() < deadline, "daemon never listened on {addr}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// `generate`/`fetch`-shared parameter block for one job tuple.
#[derive(Clone)]
struct Job {
    n: u64,
    seed: u64,
}

impl Job {
    fn flags(&self) -> Vec<String> {
        [
            "--n",
            &self.n.to_string(),
            "--x",
            "2",
            "--p",
            "0.5",
            "--seed",
            &self.seed.to_string(),
            "--ranks",
            "2",
            "--scheme",
            "rrp",
            "--engine",
            "3",
            "--format",
            "bin",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn solo(&self, dir: &std::path::Path) -> Vec<u8> {
        let out = dir.join(format!("solo_{}_{}.bin", self.n, self.seed));
        let mut args = vec![
            "generate".to_string(),
            "--model".to_string(),
            "pa".to_string(),
            "--out".to_string(),
            out.to_string_lossy().into_owned(),
        ];
        args.extend(self.flags());
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        cli(&argv);
        std::fs::read(&out).unwrap()
    }

    fn fetch(&self, addr: &str, out: &std::path::Path, extra: &[&str]) -> String {
        let mut args = vec![
            "fetch".to_string(),
            "--addr".to_string(),
            addr.to_string(),
            "--out".to_string(),
            out.to_string_lossy().into_owned(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        args.extend(self.flags());
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        cli(&argv)
    }
}

#[test]
#[ignore = "soak test — run explicitly (ci.sh runs it with --ignored)"]
fn daemon_survives_concurrent_multi_tenant_load() {
    let env_or = |key: &str, default: u64| -> u64 {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v > 0)
            .unwrap_or(default)
    };
    let scale = env_or("SERVE_SOAK_SCALE", 1);
    let tuples = env_or("SERVE_SOAK_TUPLES", 12);
    let clients = env_or("SERVE_SOAK_CLIENTS", 4);
    let dir = Arc::new(tmp_dir("load"));
    let jobs_dir = dir.join("jobs");
    let addr = free_addr();

    // The daemon, in-process on its own thread; `drain` unblocks it.
    let daemon = {
        let (addr, jobs_dir) = (addr.clone(), jobs_dir.clone());
        std::thread::spawn(move || {
            cli(&[
                "serve",
                "--addr",
                &addr,
                "--jobs-dir",
                jobs_dir.to_str().unwrap(),
                "--workers",
                "4",
                "--queue-cap",
                "64",
                "--max-conns",
                "16",
            ])
        })
    };
    wait_listening(&addr);

    // Tenants: `tuples` distinct small tuples, `clients` concurrent
    // clients each (any pair exercises coalescing), plus one large
    // streaming job — all in flight at once.
    let small: Vec<Job> = (0..tuples)
        .map(|i| Job {
            n: 3_000 + 500 * i,
            seed: 1_000 + i,
        })
        .collect();
    let large = Job {
        n: 150_000 * scale,
        seed: 77,
    };

    let mut handles = Vec::new();
    for (i, job) in small.iter().cloned().enumerate() {
        for client in 0..clients {
            let (addr, dir, job) = (addr.clone(), Arc::clone(&dir), job.clone());
            handles.push(std::thread::spawn(move || {
                let out = dir.join(format!("small_{i}_{client}.bin"));
                // With the connection cap below the client count, some
                // attempts bounce with `overloaded`; give every client
                // enough quick retries to drain through the cap.
                job.fetch(
                    &addr,
                    &out,
                    &[
                        "--max-attempts",
                        "40",
                        "--backoff-ms",
                        "20",
                        "--backoff-cap-ms",
                        "200",
                    ],
                );
                (job, out)
            }));
        }
    }
    let large_fetch = {
        let (addr, dir, job) = (addr.clone(), Arc::clone(&dir), large.clone());
        std::thread::spawn(move || {
            let out = dir.join("large.bin");
            job.fetch(
                &addr,
                &out,
                &[
                    "--max-attempts",
                    "40",
                    "--backoff-ms",
                    "20",
                    "--backoff-cap-ms",
                    "200",
                ],
            );
            out
        })
    };

    // Every small fetch matches its own solo run byte for byte.
    let mut fetched = Vec::new();
    for h in handles {
        fetched.push(h.join().unwrap());
    }
    for (job, out) in &fetched {
        let got = std::fs::read(out).unwrap();
        assert_eq!(
            got,
            job.solo(&dir),
            "n = {}, seed = {} diverged from its solo run",
            job.n,
            job.seed
        );
    }
    let large_out = large_fetch.join().unwrap();
    let large_bytes = std::fs::read(&large_out).unwrap();
    assert_eq!(
        large_bytes,
        large.solo(&dir),
        "large job diverged from its solo run"
    );

    // Mid-stream disconnect + resume on the (cached, large) artifact:
    // cut at 1/3, resume, expect the identical file.
    let resumed = dir.join("resumed.bin");
    let cut = (large_bytes.len() / 3).to_string();
    let argv: Vec<String> = [
        "fetch",
        "--addr",
        &addr,
        "--out",
        resumed.to_str().unwrap(),
        "--stop-after-bytes",
        &cut,
        "--max-attempts",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(large.flags())
    .collect();
    pa_cli::run(&argv, &mut Vec::new()).expect_err("cut fetch must fail");
    assert_eq!(
        std::fs::metadata(&resumed).unwrap().len(),
        large_bytes.len() as u64 / 3,
        "the cut leaves exactly --stop-after-bytes bytes"
    );
    let line = large.fetch(&addr, &resumed, &["--resume", "on"]);
    assert!(line.contains(&format!("resumed from {cut}")), "{line:?}");
    assert_eq!(
        std::fs::read(&resumed).unwrap(),
        large_bytes,
        "resumed fetch diverged from the uncut artifact"
    );

    // Clean shutdown: drain acks, the daemon thread returns its stats
    // line, and the cache holds one artifact per distinct tuple.
    let line = cli(&["drain", "--addr", &addr]);
    assert!(line.contains("drain acknowledged"), "{line:?}");
    let daemon_out = daemon.join().unwrap();
    assert!(daemon_out.contains("drained:"), "{daemon_out:?}");
    assert!(
        daemon_out.contains("0 dropped by drain"),
        "nothing should be in flight at drain time: {daemon_out:?}"
    );
    let artifacts = std::fs::read_dir(&jobs_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect::<Vec<_>>();
    assert_eq!(
        artifacts.len(),
        small.len() + 1,
        "one artifact per tuple, no temp litter: {artifacts:?}"
    );
    assert!(
        artifacts.iter().all(|a| a.ends_with(".art")),
        "{artifacts:?}"
    );
}
