//! Scheduling-chaos stress tests: drive the engines through adversarial
//! configurations (unbuffered messages, single-node service intervals,
//! heavy oversubscription, empty partitions) where any latent race or
//! termination bug would surface as a hang, a panic, or an invalid
//! graph.

use pa_core::{par, partition::Scheme, seq, GenOptions, PaConfig};
use pa_graph::validate::assert_valid_pa_network;
use pa_rng::{Rng64, SplitMix64};

#[test]
fn randomized_option_sweep_keeps_graphs_valid() {
    // Pseudo-random sweep over engine knobs and world shapes; the OS
    // scheduler supplies different interleavings on every run.
    let mut rng = SplitMix64::new(0xC0FFEE);
    for trial in 0..12 {
        let n = 500 + rng.gen_below(3_000);
        let x = 1 + rng.gen_below(5);
        let nranks = 1 + rng.gen_below(12) as usize;
        let opts = GenOptions {
            buffer_capacity: 1 + rng.gen_below(64) as usize,
            service_interval: 1 + rng.gen_below(128) as usize,
            ..GenOptions::default()
        };
        let scheme = Scheme::ALL[rng.gen_below(3) as usize];
        let cfg = PaConfig::new(n, x).with_seed(trial);
        let out = par::generate(&cfg, scheme, nranks, &opts);
        assert_eq!(
            out.total_edges() as u64,
            cfg.expected_edges(),
            "trial {trial}: n={n} x={x} P={nranks} {scheme} {opts:?}"
        );
        assert_valid_pa_network(cfg.n, cfg.x, &out.edge_list());
    }
}

#[test]
fn fully_unbuffered_oversubscribed_world() {
    // Every message is its own packet and every node a service round:
    // maximal interleaving pressure.
    let cfg = PaConfig::new(2_000, 3).with_seed(5);
    let opts = GenOptions {
        buffer_capacity: 1,
        service_interval: 1,
        ..GenOptions::default()
    };
    let out = par::generate(&cfg, Scheme::Rrp, 16, &opts);
    assert_valid_pa_network(cfg.n, cfg.x, &out.edge_list());
}

#[test]
fn heavily_oversubscribed_x1_is_still_exact() {
    // 64 ranks on one core; x = 1 output must still be bit-identical to
    // the sequential generator.
    let cfg = PaConfig::new(2_000, 1).with_seed(21);
    let out = par::generate_x1(
        &cfg,
        Scheme::Rrp,
        64,
        &GenOptions {
            buffer_capacity: 2,
            service_interval: 3,
            ..GenOptions::default()
        },
    );
    assert_eq!(
        out.edge_list().canonicalized(),
        seq::copy_model(&cfg).canonicalized()
    );
}

#[test]
fn worlds_with_mostly_empty_ranks_terminate() {
    // n barely exceeds the seed clique; most ranks own nothing.
    for x in [1u64, 4] {
        let cfg = PaConfig::new(x + 3, x).with_seed(1);
        let out = par::generate(&cfg, Scheme::Ucp, 32, &GenOptions::default());
        assert_valid_pa_network(cfg.n, cfg.x, &out.edge_list());
    }
}

#[test]
fn repeated_runs_under_chaos_agree_for_x1() {
    // Same configuration, five runs with different real schedules: the
    // x = 1 edge set must never vary.
    let cfg = PaConfig::new(3_000, 1).with_seed(8);
    let opts = GenOptions {
        buffer_capacity: 3,
        service_interval: 2,
        ..GenOptions::default()
    };
    let reference = par::generate_x1(&cfg, Scheme::Rrp, 9, &opts)
        .edge_list()
        .canonicalized();
    for run in 0..4 {
        let again = par::generate_x1(&cfg, Scheme::Rrp, 9, &opts)
            .edge_list()
            .canonicalized();
        assert_eq!(again, reference, "run {run} diverged");
    }
}

#[test]
#[ignore = "multi-minute soak; run explicitly with --ignored"]
fn chaos_soak_half_million_nodes_under_aggressive_faults() {
    // The long-haul version of the chaos suite: a half-million-node run
    // on 8 ranks with roughly half of all packets faulted. Success means
    // (a) the watchdog never fires — the ack/retransmit sublayer kept
    // the run live for the whole soak, (b) the streamed degree totals
    // account for every expected edge, and (c) retransmissions happened
    // but stayed bounded by the wire traffic (no retransmit storm).
    let cfg = PaConfig::new(500_000, 4).with_seed(97);
    let opts = GenOptions {
        buffer_capacity: 256,
        service_interval: 128,
        ..GenOptions::default()
    }
    .with_fault_plan(pa_core::FaultPlan::aggressive(13))
    .with_stall_timeout(std::time::Duration::from_secs(120));
    let outs = par::generate_streaming(&cfg, Scheme::Rrp, 8, &opts, |_rank| {
        par::DegreeCountSink::new(cfg.n)
    });
    let mut comm = pa_mpsim::CommStats::new(8);
    for o in &outs {
        comm.merge(&o.comm);
    }
    let degrees = par::DegreeCountSink::merge(outs.into_iter().map(|o| o.sink));
    assert_eq!(degrees.iter().sum::<u64>(), 2 * cfg.expected_edges());
    assert!(comm.faults_injected > 0, "soak injected no faults");
    assert!(comm.retransmitted > 0, "soak recovered no drops");
    assert!(
        comm.retransmitted <= comm.packets_recv,
        "retransmit storm: {} retransmissions for {} received packets",
        comm.retransmitted,
        comm.packets_recv
    );
}

#[test]
fn extension_generators_survive_oversubscription() {
    let er = pa_core::er::generate_par(&pa_core::er::ErConfig::new(3_000, 0.003).with_seed(2), 24);
    assert!(pa_graph::validate::check_simple(3_000, &er).is_empty());

    let cl_cfg = pa_core::cl::ClConfig::new(pa_core::cl::power_law_weights(3_000, 3.0, 3.0), 2);
    let cl = pa_core::cl::generate_par(&cl_cfg, 24);
    assert!(pa_graph::validate::check_simple(3_000, &cl).is_empty());

    let rmat_cfg = pa_core::rmat::RmatConfig::graph500(10)
        .with_edges(10_000)
        .with_seed(2);
    let rmat = pa_core::rmat::generate_par(&rmat_cfg, 24);
    assert_eq!(rmat.len(), 10_000);
}
