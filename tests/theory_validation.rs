//! Integration checks of the paper's analytical claims (Lemmas 3.1/3.4,
//! Theorem 3.3) against both analytic draw statistics and live engine
//! measurements.

use pa_analysis::messages;
use pa_core::partition::{Scheme, Ucp};
use pa_core::{chains, par, seq, GenOptions, PaConfig};

#[test]
fn lemma_3_4_request_counts_follow_the_harmonic_law() {
    // Count actual copy-lookups per node from the draw streams and
    // compare bin means with (1−p)(H_{n−1} − H_k).
    let (n, p, seed) = (200_000u64, 0.5, 17u64);
    let mut lookups = vec![0u32; n as usize];
    for t in 2..n {
        let c = seq::draw_choice(seed, p, 1, t, 0, 0);
        if !c.direct {
            lookups[c.k as usize] += 1;
        }
    }
    let mut lo = 16u64;
    while lo < n / 4 {
        let hi = lo * 4;
        let measured: f64 =
            (lo..hi).map(|k| lookups[k as usize] as f64).sum::<f64>() / (hi - lo) as f64;
        let predicted: f64 = (lo..hi)
            .map(|k| messages::expected_requests_for_node(n, p, k))
            .sum::<f64>()
            / (hi - lo) as f64;
        assert!(
            (measured - predicted).abs() < 0.15 * predicted + 0.05,
            "bin [{lo},{hi}): measured {measured:.3} vs predicted {predicted:.3}"
        );
        lo = hi;
    }
}

#[test]
fn lemma_3_1_selection_chain_membership_probability() {
    // P(i ∈ S_t) = 1/i. The probability is over the *draw realization*
    // (under one seed all chains merge, so different starting nodes are
    // not independent samples): fix t, walk its selection chain under
    // many seeds, and tally how often each probe node appears.
    let t = 50_000u64;
    let probes = [3u64, 5, 10, 50];
    let mut hits = [0u64; 4];
    let trials = 4_000u64;
    for seed in 0..trials {
        let mut cur = t;
        while cur > 1 {
            if let Some(slot) = probes.iter().position(|&q| q == cur) {
                hits[slot] += 1;
            }
            cur = seq::draw_choice(seed, 0.5, 1, cur, 0, 0).k;
        }
    }
    for (slot, &i) in probes.iter().enumerate() {
        let measured = hits[slot] as f64 / trials as f64;
        let predicted = 1.0 / i as f64;
        let sigma = (predicted * (1.0 - predicted) / trials as f64).sqrt();
        assert!(
            (measured - predicted).abs() < 5.0 * sigma + 0.005,
            "P({i} ∈ S_t): measured {measured:.4}, predicted {predicted:.4}"
        );
    }
}

#[test]
fn theorem_3_3_chain_lengths_within_bounds() {
    let seed = 3;
    for n in [10_000u64, 100_000, 1_000_000] {
        let dep = chains::summarize(&chains::dependency_lengths(seed, 0.5, n));
        let ln_n = (n as f64).ln();
        assert!(dep.mean <= ln_n, "n={n}: mean {} > ln n {ln_n}", dep.mean);
        assert!(
            (dep.max as f64) <= 5.0 * ln_n,
            "n={n}: max {} > 5 ln n {}",
            dep.max,
            5.0 * ln_n
        );
        // Mean is also bounded by 1/p = 2 for p = 1/2.
        assert!(dep.mean <= 2.1, "n={n}: mean {} > 1/p", dep.mean);
    }
}

#[test]
fn engine_queue_waits_match_chain_theory() {
    // Short dependency chains mean queues never blow up: the peak number
    // of parked waiters on any rank stays a small fraction of its nodes.
    let cfg = PaConfig::new(50_000, 1).with_seed(41);
    let out = par::generate_x1(&cfg, Scheme::Rrp, 8, &GenOptions::default());
    for r in &out.ranks {
        assert!(
            r.counters.max_queued_waiters < r.counters.nodes / 2,
            "rank {}: peak waiters {} vs {} nodes",
            r.rank,
            r.counters.max_queued_waiters,
            r.counters.nodes
        );
    }
}

#[test]
fn engine_incoming_requests_track_lemma_3_4_per_rank() {
    let (n, ranks) = (100_000u64, 8usize);
    let cfg = PaConfig::new(n, 1).with_seed(13);
    let out = par::generate_x1(&cfg, Scheme::Ucp, ranks, &GenOptions::default());
    let part = Ucp::new(n, ranks);
    let predicted = messages::expected_requests_per_rank(cfg.p, &part);
    for (r, pred) in out.ranks.iter().zip(&predicted) {
        let measured = (r.counters.requests_served + r.counters.requests_queued) as f64;
        // The lemma counts logical lookups; only lookups from *other*
        // ranks become messages, so measured <= predicted, and for the
        // heavily requested low ranks the remote share dominates.
        assert!(
            measured <= pred * 1.05 + 50.0,
            "rank {}: measured {measured} above bound {pred}",
            r.rank
        );
    }
    let m0 = (out.ranks[0].counters.requests_served + out.ranks[0].counters.requests_queued) as f64;
    assert!(
        m0 > 0.5 * predicted[0],
        "rank 0 should see most of its predicted requests: {m0} vs {}",
        predicted[0]
    );
}
